//! Standard network topologies with explicit port numberings.
//!
//! Gathering algorithms must work for *every* port numbering — the adversary
//! chooses it. Generators here produce a natural numbering; wrap any graph
//! with [`with_shuffled_ports`] to let a seeded adversary renumber every
//! node's ports.
//!
//! # Example
//!
//! ```
//! use nochatter_graph::generators;
//!
//! let g = generators::torus(3, 4);
//! assert_eq!(g.node_count(), 12);
//! assert_eq!(g.max_degree(), 4);
//! let shuffled = generators::with_shuffled_ports(&g, 0xC0FFEE);
//! assert_eq!(shuffled.node_count(), 12);
//! ```

use crate::graph::{Graph, GraphBuilder, NodeId, Port};
use crate::rng::{derive_seed, Rng};

/// Builds a graph from undirected node pairs, assigning ports in insertion
/// order at each endpoint.
///
/// # Panics
///
/// Panics if the pairs do not form a valid connected simple graph.
pub fn from_pairs(n: u32, pairs: &[(u32, u32)]) -> Graph {
    let mut next_port = vec![0u32; n as usize];
    let mut b = GraphBuilder::new(n);
    for &(u, v) in pairs {
        let pu = next_port[u as usize];
        let pv = next_port[v as usize];
        next_port[u as usize] += 1;
        next_port[v as usize] += 1;
        b.edge(u, pu, v, pv);
    }
    b.build().expect("generator produced an invalid graph")
}

/// The ring `C_n` (`n >= 3`): port 0 leads counterclockwise, port 1
/// clockwise.
///
/// # Panics
///
/// Panics if `n < 3` (a 2-ring would need parallel edges).
pub fn ring(n: u32) -> Graph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        let j = (i + 1) % n;
        // Port 1 at i goes clockwise to j; port 0 at j comes back.
        b.edge(i, 1, j, 0);
    }
    b.build().expect("ring is valid")
}

/// The path `P_n` (`n >= 2`): interior nodes have port 0 toward node 0.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn path(n: u32) -> Graph {
    assert!(n >= 2, "path needs at least 2 nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n - 1 {
        let pu = if i == 0 { 0 } else { 1 };
        b.edge(i, pu, i + 1, 0);
    }
    b.build().expect("path is valid")
}

/// The complete graph `K_n` (`n >= 2`): at node `i`, port `p` leads to the
/// `p`-th other node in increasing identifier order.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete(n: u32) -> Graph {
    assert!(n >= 2, "complete graph needs at least 2 nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in i + 1..n {
            // Port of j at i skips i itself, and vice versa.
            b.edge(i, j - 1, j, i);
        }
    }
    b.build().expect("complete graph is valid")
}

/// The star `S_n` (`n >= 2` total nodes): node 0 is the center.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: u32) -> Graph {
    assert!(n >= 2, "star needs at least 2 nodes");
    let mut b = GraphBuilder::new(n);
    for leaf in 1..n {
        b.edge(0, leaf - 1, leaf, 0);
    }
    b.build().expect("star is valid")
}

/// The `w × h` grid (`w, h >= 1`, `w*h >= 2`). Ports at each node are
/// numbered in direction order left, right, up, down, skipping absent
/// directions.
///
/// # Panics
///
/// Panics if `w * h < 2`.
pub fn grid(w: u32, h: u32) -> Graph {
    assert!(w * h >= 2, "grid needs at least 2 nodes");
    let id = |x: u32, y: u32| y * w + x;
    let mut pairs = Vec::new();
    for y in 0..h {
        for x in 0..w {
            // Insertion order per node matches left, right, up, down because
            // we add the left and up edges of each node as we reach it in
            // row-major order; see `node_port_order_on_grid` test.
            if x > 0 {
                pairs.push((id(x - 1, y), id(x, y)));
            }
            if y > 0 {
                pairs.push((id(x, y - 1), id(x, y)));
            }
        }
    }
    from_pairs(w * h, &pairs)
}

/// The `w × h` torus (`w, h >= 3` so the graph stays simple); every node has
/// degree 4.
///
/// # Panics
///
/// Panics if `w < 3` or `h < 3`.
pub fn torus(w: u32, h: u32) -> Graph {
    assert!(w >= 3 && h >= 3, "torus needs both dimensions >= 3");
    let id = |x: u32, y: u32| y * w + x;
    let mut pairs = Vec::new();
    for y in 0..h {
        for x in 0..w {
            pairs.push((id(x, y), id((x + 1) % w, y)));
            pairs.push((id(x, y), id(x, (y + 1) % h)));
        }
    }
    from_pairs(w * h, &pairs)
}

/// The `d`-dimensional hypercube (`d >= 1`): taking port `b` flips bit `b`,
/// and entry ports equal exit ports.
///
/// # Panics
///
/// Panics if `d < 1` or `d > 16`.
pub fn hypercube(d: u32) -> Graph {
    assert!((1..=16).contains(&d), "hypercube dimension must be 1..=16");
    let n = 1u32 << d;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for bit in 0..d {
            let j = i ^ (1 << bit);
            if i < j {
                b.edge(i, bit, j, bit);
            }
        }
    }
    b.build().expect("hypercube is valid")
}

/// The complete binary tree with `levels` levels (`levels >= 1`); level 1 is
/// the root alone. Ports: at every non-root node port 0 leads to the parent;
/// children hang off the next ports in left-to-right order.
///
/// # Panics
///
/// Panics if `levels < 1` or `levels > 20`.
pub fn binary_tree(levels: u32) -> Graph {
    assert!((1..=20).contains(&levels), "levels must be 1..=20");
    let n = (1u32 << levels) - 1;
    assert!(n >= 2, "a single-node tree is not a valid network");
    let mut pairs = Vec::new();
    for child in 1..n {
        let parent = (child - 1) / 2;
        pairs.push((child, parent));
    }
    // Sorting by child puts the parent link first at every node (the child
    // appears first as a left endpoint), giving the documented numbering.
    from_pairs(n, &pairs)
}

/// A uniformly random tree on `n` nodes (`n >= 2`): each node `i >= 1`
/// attaches to a uniform earlier node. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_tree(n: u32, seed: u64) -> Graph {
    assert!(n >= 2, "tree needs at least 2 nodes");
    let mut rng = Rng::seed_from(seed);
    let mut pairs = Vec::new();
    for i in 1..n {
        let parent = rng.range(i as u64) as u32;
        pairs.push((parent, i));
    }
    from_pairs(n, &pairs)
}

/// A random connected graph: a random tree plus `extra_edges` additional
/// distinct non-tree edges (silently capped at the complete graph).
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_connected(n: u32, extra_edges: u32, seed: u64) -> Graph {
    assert!(n >= 2, "graph needs at least 2 nodes");
    let mut rng = Rng::seed_from(seed);
    let mut pairs = Vec::new();
    let mut present = std::collections::HashSet::new();
    for i in 1..n {
        let parent = rng.range(i as u64) as u32;
        pairs.push((parent, i));
        present.insert((parent.min(i), parent.max(i)));
    }
    let max_edges = n as u64 * (n as u64 - 1) / 2;
    let target = (pairs.len() as u64 + extra_edges as u64).min(max_edges);
    let mut attempts = 0u64;
    while (pairs.len() as u64) < target && attempts < 100 * max_edges {
        attempts += 1;
        let u = rng.range(n as u64) as u32;
        let v = rng.range(n as u64) as u32;
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if present.insert(key) {
            pairs.push(key);
        }
    }
    from_pairs(n, &pairs)
}

/// The complete bipartite graph `K_{a,b}` (`a, b >= 1`, `a + b >= 2`):
/// nodes `0..a` on the left, `a..a+b` on the right; port `p` at a left node
/// leads to the `p`-th right node and vice versa.
///
/// # Panics
///
/// Panics if `a == 0` or `b == 0`.
pub fn complete_bipartite(a: u32, b: u32) -> Graph {
    assert!(a >= 1 && b >= 1, "both sides need at least one node");
    let mut builder = GraphBuilder::new(a + b);
    for l in 0..a {
        for r in 0..b {
            builder.edge(l, r, a + r, l);
        }
    }
    builder.build().expect("complete bipartite is valid")
}

/// A lollipop: the complete graph `K_m` with a path of `tail` extra nodes
/// hanging off node 0 — a classical worst case for exploration (the walk
/// keeps getting lost in the clique).
///
/// # Panics
///
/// Panics if `m < 2` or `tail == 0`.
pub fn lollipop(m: u32, tail: u32) -> Graph {
    assert!(m >= 2, "the clique needs at least 2 nodes");
    assert!(tail >= 1, "the tail needs at least 1 node");
    let mut builder = GraphBuilder::new(m + tail);
    // The clique, numbered as in `complete`.
    for i in 0..m {
        for j in i + 1..m {
            builder.edge(i, j - 1, j, i);
        }
    }
    // The tail off node 0: node 0 gets one extra port m-1.
    builder.edge(0, m - 1, m, 0);
    for t in 1..tail {
        builder.edge(m + t - 1, 1, m + t, 0);
    }
    builder.build().expect("lollipop is valid")
}

/// A barbell: two `K_m` cliques joined by a single bridge edge between
/// their node 0s.
///
/// # Panics
///
/// Panics if `m < 2`.
pub fn barbell(m: u32) -> Graph {
    assert!(m >= 2, "each bell needs at least 2 nodes");
    let mut builder = GraphBuilder::new(2 * m);
    for offset in [0, m] {
        for i in 0..m {
            for j in i + 1..m {
                builder.edge(offset + i, j - 1, offset + j, i);
            }
        }
    }
    builder.edge(0, m - 1, m, m - 1);
    builder.build().expect("barbell is valid")
}

/// Re-numbers the ports of every node by an independent random permutation —
/// the adversary's prerogative. Deterministic in `seed`; the underlying
/// topology is unchanged.
pub fn with_shuffled_ports(graph: &Graph, seed: u64) -> Graph {
    let mut rng = Rng::seed_from(seed);
    let n = graph.node_count() as u32;
    // perm[u][old_port] = new_port
    let perms: Vec<Vec<u32>> = (0..n)
        .map(|u| {
            let d = graph.degree(NodeId::new(u));
            let mut p: Vec<u32> = (0..d).collect();
            rng.shuffle(&mut p);
            p
        })
        .collect();
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        let node = NodeId::new(u);
        for old in 0..graph.degree(node) {
            let (v, back) = graph.neighbor(node, Port::new(old)).expect("valid port");
            if u < v.index() as u32 {
                b.edge(
                    u,
                    perms[u as usize][old as usize],
                    v.index() as u32,
                    perms[v.index()][back.index()],
                );
            }
        }
    }
    b.build().expect("port shuffle preserves validity")
}

/// The named standard families, for sweeping benchmarks over topologies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Family {
    /// Cycle `C_n`.
    Ring,
    /// Path `P_n`.
    Path,
    /// Complete graph `K_n`.
    Complete,
    /// Star with `n-1` leaves.
    Star,
    /// Near-square grid with `n` nodes (sides `⌈√n⌉ × rest`).
    Grid,
    /// Random tree.
    RandomTree,
    /// Random connected graph with ~`n/2` extra edges.
    RandomConnected,
    /// Complete bipartite graph with near-equal sides.
    Bipartite,
    /// Lollipop (clique plus tail), a classical exploration worst case.
    Lollipop,
}

/// Salt distinguishing graph-instantiation streams from other consumers of
/// the same campaign seed (see [`derive_seed`]).
const SALT_INSTANCE: u64 = 0x1;
/// Salt for the independent port-shuffle stream of
/// [`Family::instantiate_shuffled`].
const SALT_PORTS: u64 = 0x2;

impl Family {
    /// All families.
    pub fn all() -> &'static [Family] {
        &[
            Family::Ring,
            Family::Path,
            Family::Complete,
            Family::Star,
            Family::Grid,
            Family::RandomTree,
            Family::RandomConnected,
            Family::Bipartite,
            Family::Lollipop,
        ]
    }

    /// A short lowercase name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Family::Ring => "ring",
            Family::Path => "path",
            Family::Complete => "complete",
            Family::Star => "star",
            Family::Grid => "grid",
            Family::RandomTree => "rtree",
            Family::RandomConnected => "rconn",
            Family::Bipartite => "bipart",
            Family::Lollipop => "lolli",
        }
    }

    /// Parses the short [`Family::name`] back into the family.
    pub fn by_name(name: &str) -> Option<Family> {
        Family::all().iter().copied().find(|f| f.name() == name)
    }

    /// A stable numeric tag for seed derivation; independent of declaration
    /// order so reordering the enum never reshuffles derived streams.
    fn tag(self) -> u64 {
        match self {
            Family::Ring => 1,
            Family::Path => 2,
            Family::Complete => 3,
            Family::Star => 4,
            Family::Grid => 5,
            Family::RandomTree => 6,
            Family::RandomConnected => 7,
            Family::Bipartite => 8,
            Family::Lollipop => 9,
        }
    }

    /// Instantiates the family with approximately `n` nodes (exactly `n`
    /// when the family permits it). Deterministic in `seed`.
    ///
    /// `seed` is treated as a *campaign-level* seed: random families
    /// ([`Family::RandomTree`], [`Family::RandomConnected`]) derive an
    /// independent per-instance stream from `(seed, family, n)` via
    /// [`derive_seed`], so sweeping one campaign seed over many sizes never
    /// reuses a raw RNG stream across instances.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or if the family requires more nodes (rings need 3).
    pub fn instantiate(self, n: u32, seed: u64) -> Graph {
        let instance_seed = derive_seed(seed, &[SALT_INSTANCE, self.tag(), u64::from(n)]);
        match self {
            Family::Ring => ring(n.max(3)),
            Family::Path => path(n),
            Family::Complete => complete(n),
            Family::Star => star(n),
            Family::Grid => {
                let w = (n as f64).sqrt().ceil() as u32;
                let h = n.div_ceil(w);
                grid(w.max(1), h.max(1))
            }
            Family::RandomTree => random_tree(n, instance_seed),
            Family::RandomConnected => random_connected(n, n / 2, instance_seed),
            Family::Bipartite => complete_bipartite(n / 2, n - n / 2),
            Family::Lollipop => {
                let m = (2 * n / 3).max(2);
                lollipop(m, (n - m).max(1))
            }
        }
    }

    /// Like [`Family::instantiate`], then renumbers every node's ports by a
    /// seeded adversary ([`with_shuffled_ports`]). The shuffle stream is
    /// derived independently of the instantiation stream, so the same
    /// topology under different port numberings is a one-seed-apart sweep.
    pub fn instantiate_shuffled(self, n: u32, seed: u64) -> Graph {
        let g = self.instantiate(n, seed);
        with_shuffled_ports(
            &g,
            derive_seed(seed, &[SALT_PORTS, self.tag(), u64::from(n)]),
        )
    }

    /// Iterates instances of this family over `sizes`, each with its own
    /// derived seed — the campaign-style way to sweep a family.
    ///
    /// # Example
    ///
    /// ```
    /// use nochatter_graph::generators::Family;
    ///
    /// let sizes: Vec<u32> = Family::RandomTree
    ///     .instances([4, 6, 8], 42)
    ///     .map(|g| g.node_count() as u32)
    ///     .collect();
    /// assert_eq!(sizes, vec![4, 6, 8]);
    /// ```
    pub fn instances(
        self,
        sizes: impl IntoIterator<Item = u32>,
        seed: u64,
    ) -> impl Iterator<Item = Graph> {
        sizes.into_iter().map(move |n| self.instantiate(n, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn ring_degrees_and_size() {
        let g = ring(7);
        assert_eq!(g.node_count(), 7);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn ring_port_one_tours_clockwise() {
        let g = ring(5);
        let mut at = NodeId::new(0);
        for _ in 0..5 {
            let (next, entry) = g.neighbor(at, Port::new(1)).unwrap();
            assert_eq!(entry, Port::new(0));
            at = next;
        }
        assert_eq!(at, NodeId::new(0));
    }

    #[test]
    fn path_endpoints_have_degree_one() {
        let g = path(6);
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(5)), 1);
        for i in 1..5 {
            assert_eq!(g.degree(NodeId::new(i)), 2);
        }
    }

    #[test]
    fn complete_is_complete() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(algo::diameter(&g), 1);
    }

    #[test]
    fn complete_port_convention() {
        let g = complete(4);
        // At node 2, port 0 -> node 0, port 1 -> node 1, port 2 -> node 3.
        assert_eq!(
            g.neighbor(NodeId::new(2), Port::new(0)).unwrap().0,
            NodeId::new(0)
        );
        assert_eq!(
            g.neighbor(NodeId::new(2), Port::new(1)).unwrap().0,
            NodeId::new(1)
        );
        assert_eq!(
            g.neighbor(NodeId::new(2), Port::new(2)).unwrap().0,
            NodeId::new(3)
        );
    }

    #[test]
    fn star_center_degree() {
        let g = star(8);
        assert_eq!(g.degree(NodeId::new(0)), 7);
        for leaf in 1..8 {
            assert_eq!(g.degree(NodeId::new(leaf)), 1);
        }
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 2);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 3 + 4); // 3 vertical + 4 horizontal
        assert_eq!(algo::diameter(&g), 3);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(3, 3);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.edge_count(), 18);
    }

    #[test]
    fn hypercube_ports_flip_bits() {
        let g = hypercube(3);
        assert_eq!(g.node_count(), 8);
        for v in g.nodes() {
            for b in 0..3 {
                let (u, back) = g.neighbor(v, Port::new(b)).unwrap();
                assert_eq!(u.index(), v.index() ^ (1 << b));
                assert_eq!(back, Port::new(b));
            }
        }
    }

    #[test]
    fn binary_tree_sizes() {
        let g = binary_tree(3);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.degree(NodeId::new(1)), 3);
        assert_eq!(g.degree(NodeId::new(6)), 1);
    }

    #[test]
    fn random_graphs_are_valid_and_deterministic() {
        for seed in 0..5 {
            let a = random_connected(12, 6, seed);
            let b = random_connected(12, 6, seed);
            assert_eq!(a, b, "same seed must give the same graph");
            assert!(algo::is_connected(&a));
        }
        let a = random_connected(12, 6, 1);
        let b = random_connected(12, 6, 2);
        assert_ne!(a, b, "different seeds should differ");
    }

    #[test]
    fn random_tree_has_n_minus_1_edges() {
        let g = random_tree(15, 3);
        assert_eq!(g.edge_count(), 14);
    }

    #[test]
    fn shuffled_ports_preserve_topology() {
        let g = torus(3, 4);
        let s = with_shuffled_ports(&g, 99);
        assert_eq!(s.node_count(), g.node_count());
        assert_eq!(s.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(s.degree(v), g.degree(v));
        }
        // Same multiset of neighbor sets.
        for v in g.nodes() {
            let mut a: Vec<_> = (0..g.degree(v))
                .map(|p| g.neighbor(v, Port::new(p)).unwrap().0)
                .collect();
            let mut b: Vec<_> = (0..s.degree(v))
                .map(|p| s.neighbor(v, Port::new(p)).unwrap().0)
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn families_instantiate() {
        for &f in Family::all() {
            let g = f.instantiate(9, 7);
            assert!(g.node_count() >= 2, "{} too small", f.name());
            assert!(algo::is_connected(&g));
        }
    }

    #[test]
    fn family_names_round_trip() {
        for &f in Family::all() {
            assert_eq!(Family::by_name(f.name()), Some(f));
        }
        assert_eq!(Family::by_name("nope"), None);
    }

    #[test]
    fn instances_use_independent_per_size_streams() {
        // With raw seed reuse, random_tree(n, s) and random_tree(n, s)
        // obviously coincide; the point of the derived streams is that the
        // *same campaign seed* at different sizes (or families) never feeds
        // the generator the same raw stream. Probe that by checking the
        // parent choices of the first few nodes differ somewhere across
        // sizes (they would be identical prefixes under stream reuse).
        let prefixes: Vec<Vec<u32>> = [6u32, 7, 8, 9]
            .iter()
            .map(|&n| {
                let g = Family::RandomTree.instantiate(n, 17);
                (1..5)
                    .map(|child| {
                        (0..child)
                            .find(|&p| {
                                (0..g.degree(NodeId::new(p))).any(|port| {
                                    g.neighbor(NodeId::new(p), Port::new(port)).unwrap().0
                                        == NodeId::new(child)
                                })
                            })
                            .unwrap()
                    })
                    .collect()
            })
            .collect();
        assert!(
            prefixes.windows(2).any(|w| w[0] != w[1]),
            "per-size streams look identical — seed derivation is broken: {prefixes:?}"
        );
    }

    #[test]
    fn instantiate_shuffled_preserves_topology() {
        for &f in Family::all() {
            let g = f.instantiate(8, 5);
            let s = f.instantiate_shuffled(8, 5);
            assert_eq!(g.node_count(), s.node_count());
            assert_eq!(g.edge_count(), s.edge_count());
            assert!(algo::is_connected(&s));
        }
    }

    /// The canonical `(u, port_at_u, v, port_at_v)` edge list with `u < v`,
    /// sorted — a full fingerprint of a port-labeled graph.
    fn edge_list(g: &Graph) -> Vec<(u32, u32, u32, u32)> {
        let mut out = Vec::new();
        for u in g.nodes() {
            for port in 0..g.degree(u) {
                let (v, back) = g.neighbor(u, Port::new(port)).unwrap();
                if u.index() < v.index() {
                    out.push((
                        u.index() as u32,
                        port,
                        v.index() as u32,
                        back.index() as u32,
                    ));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn derived_random_graphs_golden_values() {
        // Golden fingerprints for campaign seed 42: the per-instance seed
        // derivation feeding random_tree / random_connected /
        // with_shuffled_ports must never change, or every recorded campaign
        // silently refers to different networks. Computed once from this
        // implementation (derive_seed + xoshiro256**).
        assert_eq!(
            edge_list(&Family::RandomTree.instantiate(6, 42)),
            vec![
                (0, 0, 1, 0),
                (0, 1, 4, 0),
                (1, 1, 2, 0),
                (1, 2, 3, 0),
                (3, 1, 5, 0)
            ],
        );
        assert_eq!(
            edge_list(&Family::RandomConnected.instantiate(6, 42)),
            vec![
                (0, 0, 1, 0),
                (0, 1, 4, 2),
                (1, 1, 2, 0),
                (1, 2, 3, 0),
                (2, 1, 4, 3),
                (2, 2, 3, 2),
                (3, 1, 4, 0),
                (4, 1, 5, 0)
            ],
        );
        assert_eq!(
            edge_list(&Family::Ring.instantiate_shuffled(4, 42)),
            vec![(0, 0, 1, 0), (0, 1, 3, 0), (1, 1, 2, 0), (2, 1, 3, 1)],
        );
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 6);
        for l in 0..2 {
            assert_eq!(g.degree(NodeId::new(l)), 3);
        }
        for r in 2..5 {
            assert_eq!(g.degree(NodeId::new(r)), 2);
        }
        assert_eq!(algo::diameter(&g), 2);
    }

    #[test]
    fn lollipop_structure() {
        let g = lollipop(4, 3);
        assert_eq!(g.node_count(), 7);
        // Node 0 bridges clique and tail.
        assert_eq!(g.degree(NodeId::new(0)), 4);
        // The tail end is a leaf.
        assert_eq!(g.degree(NodeId::new(6)), 1);
        assert!(algo::is_connected(&g));
        assert_eq!(algo::diameter(&g), 4);
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(3);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 3 + 3 + 1);
        assert_eq!(g.degree(NodeId::new(0)), 3); // clique + bridge
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert_eq!(algo::diameter(&g), 3);
    }

    #[test]
    fn from_pairs_ports_follow_insertion_order() {
        let g = from_pairs(3, &[(0, 1), (0, 2)]);
        assert_eq!(
            g.neighbor(NodeId::new(0), Port::new(0)).unwrap().0,
            NodeId::new(1)
        );
        assert_eq!(
            g.neighbor(NodeId::new(0), Port::new(1)).unwrap().0,
            NodeId::new(2)
        );
    }
}
