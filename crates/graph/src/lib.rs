//! Anonymous port-labeled graphs for mobile-agent algorithms.
//!
//! This crate models the networks of *Want to Gather? No Need to Chatter!*
//! (Bouchard, Dieudonné & Pelc, PODC 2020): undirected connected graphs whose
//! nodes are **anonymous** (carry no identifiers an agent could read) but
//! whose edges carry local *port numbers*: the edges incident to a node of
//! degree `d` are numbered `0..d` at that node, and the two endpoints of an
//! edge are numbered independently.
//!
//! The crate provides:
//!
//! * [`Graph`] — the immutable validated graph representation, built through
//!   [`GraphBuilder`];
//! * [`generators`] — standard topologies (rings, paths, grids, tori, trees,
//!   hypercubes, complete graphs, random connected graphs) with optional
//!   adversarial re-numbering of ports;
//! * [`enumerate`] — exhaustive enumeration of *all* connected port-labeled
//!   graphs of a small size, used to certify genuinely universal exploration
//!   sequences;
//! * [`dynamic`] — round-varying topologies: [`dynamic::Topology`]
//!   providers (periodic outages, seeded edge failures, the
//!   1-interval-connected dynamic ring) yielding per-round edge-presence
//!   views over a static base graph;
//! * [`InitialConfiguration`] — a graph together with labeled start nodes,
//!   the objects enumerated by the unknown-upper-bound algorithm;
//! * [`rng`] — a tiny deterministic RNG (SplitMix64 / xoshiro256**) so that
//!   every randomized generator is bit-reproducible without external
//!   dependencies.
//!
//! # Example
//!
//! ```
//! use nochatter_graph::{generators, NodeId, Port};
//!
//! let g = generators::ring(6);
//! assert_eq!(g.node_count(), 6);
//! let (next, entry) = g.neighbor(NodeId::new(0), Port::new(1)).unwrap();
//! // Walking out of port 1 everywhere tours the ring.
//! assert_eq!(g.degree(next), 2);
//! assert!(entry.index() < 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod graph;

pub mod algo;
pub mod dynamic;
pub mod enumerate;
pub mod generators;
pub mod rng;

pub use config::{ConfigError, InitialConfiguration, Label};
pub use error::GraphError;
pub use graph::{Graph, GraphBuilder, NodeId, Port};
