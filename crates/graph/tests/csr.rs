//! Property tests pinning the CSR adjacency layout: a validated [`Graph`]
//! and an adjacency rebuilt from its own `neighbor` answers must agree on
//! everything the public API exposes, for every generator family.

use proptest::prelude::*;

use nochatter_graph::generators::Family;
use nochatter_graph::{Graph, GraphBuilder, NodeId, Port};

fn graph_strategy() -> impl Strategy<Value = Graph> {
    (0usize..Family::all().len(), 3u32..14, any::<u64>()).prop_map(|(family, n, seed)| {
        // `instantiate_shuffled` also exercises adversarial port
        // renumbering, so CSR rows are not in any convenient order.
        Family::all()[family].instantiate_shuffled(n, seed)
    })
}

/// Every edge read back through the CSR API, as builder input.
fn edges_via_api(g: &Graph) -> Vec<(u32, u32, u32, u32)> {
    let mut edges = Vec::with_capacity(g.edge_count());
    for u in g.nodes() {
        for p in 0..g.degree(u) {
            let (v, q) = g.neighbor(u, Port::new(p)).expect("port within degree");
            if u.index() < v.index() {
                edges.push((u.index() as u32, p, v.index() as u32, q.number()));
            }
        }
    }
    edges
}

proptest! {
    /// CSR answers are internally consistent: port round-trips hold, the
    /// degree sum is twice the edge count, ports beyond the degree are
    /// `None`, and the `neighbors` row iterator agrees with per-port
    /// `neighbor` lookups.
    #[test]
    fn csr_is_internally_consistent(g in graph_strategy()) {
        let mut degree_sum = 0usize;
        for u in g.nodes() {
            let d = g.degree(u);
            degree_sum += d as usize;
            prop_assert!(d <= g.max_degree());
            let row: Vec<(NodeId, Port)> = g.neighbors(u).collect();
            prop_assert_eq!(row.len() as u32, d);
            for p in 0..d {
                let (v, q) = g.neighbor(u, Port::new(p)).expect("port within degree");
                prop_assert_eq!(row[p as usize], (v, q));
                prop_assert_ne!(v, u);
                // Port symmetry: taking the entry port back returns here.
                prop_assert_eq!(g.neighbor(v, q), Some((u, Port::new(p))));
            }
            prop_assert_eq!(g.neighbor(u, Port::new(d)), None);
            prop_assert_eq!(g.neighbor(u, Port::new(d + 17)), None);
        }
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    /// Rebuilding a graph from the edges the CSR reports yields an equal
    /// graph: the flat layout loses nothing the builder put in.
    #[test]
    fn csr_round_trips_through_the_builder(g in graph_strategy()) {
        let mut b = GraphBuilder::new(g.node_count() as u32);
        for (u, pu, v, pv) in edges_via_api(&g) {
            b.edge(u, pu, v, pv);
        }
        let rebuilt = b.build().expect("edges from a valid graph are valid");
        prop_assert_eq!(&rebuilt, &g);
        for u in g.nodes() {
            prop_assert_eq!(rebuilt.degree(u), g.degree(u));
            for p in 0..=g.degree(u) {
                prop_assert_eq!(rebuilt.neighbor(u, Port::new(p)), g.neighbor(u, Port::new(p)));
            }
        }
        prop_assert_eq!(format!("{rebuilt:?}"), format!("{g:?}"));
    }
}
