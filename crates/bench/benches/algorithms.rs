//! Criterion benchmarks for the paper's algorithms end to end: gathering
//! (silent and talking), gossiping, and the unknown-bound feasibility run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nochatter_core::unknown::{run_unknown, EstMode, SliceEnumeration};
use nochatter_core::{harness, BitStr, CommMode, KnownSetup};
use nochatter_graph::{generators, InitialConfiguration, Label, NodeId};
use nochatter_sim::WakeSchedule;

fn label(v: u64) -> Label {
    Label::new(v).unwrap()
}

fn spread(graph: nochatter_graph::Graph, labels: &[u64]) -> InitialConfiguration {
    let n = graph.node_count();
    let agents = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| (label(l), NodeId::new((i * n / labels.len()) as u32)))
        .collect();
    InitialConfiguration::new(graph, agents).unwrap()
}

/// Full GatherKnownUpperBound runs across sizes (reproduces the F1 curve as
/// wall-clock cost).
fn gather_known(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_known");
    for n in [6u32, 10, 14] {
        let cfg = spread(generators::ring(n), &[2, 3]);
        let setup = KnownSetup::for_configuration(&cfg, n, 11);
        group.bench_with_input(BenchmarkId::new("ring_silent", n), &cfg, |b, cfg| {
            b.iter(|| {
                harness::run_known(cfg, &setup, CommMode::Silent, WakeSchedule::Simultaneous)
                    .unwrap()
            })
        });
    }
    // The talking baseline on the largest instance, for the T5 ratio.
    let cfg = spread(generators::ring(14), &[2, 3]);
    let setup = KnownSetup::for_configuration(&cfg, 14, 11);
    group.bench_function("ring14_talking", |b| {
        b.iter(|| {
            harness::run_known(&cfg, &setup, CommMode::Talking, WakeSchedule::Simultaneous).unwrap()
        })
    });
    group.finish();
}

/// Gather + gossip with growing message sizes (the F4 curve as wall-clock).
fn gossip(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip");
    for len in [2usize, 8] {
        let cfg = spread(generators::path(3), &[2, 3]);
        let setup = KnownSetup::for_configuration(&cfg, 3, 3);
        let messages: Vec<(Label, BitStr)> = cfg
            .agents()
            .iter()
            .map(|&(l, _)| (l, BitStr::from_bits(vec![true; len])))
            .collect();
        group.bench_with_input(BenchmarkId::new("path3", len), &messages, |b, messages| {
            b.iter(|| {
                harness::run_gossip_outcome(
                    &cfg,
                    &setup,
                    CommMode::Silent,
                    messages,
                    WakeSchedule::Simultaneous,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// The unknown-bound feasibility run with the truth as the first
/// hypothesis (already millions of fast-forwarded rounds).
fn gather_unknown(c: &mut Criterion) {
    let truth = InitialConfiguration::new(
        generators::path(2),
        vec![(label(1), NodeId::new(0)), (label(2), NodeId::new(1))],
    )
    .unwrap();
    c.bench_function("unknown_truth_at_1", |b| {
        b.iter(|| {
            run_unknown(
                &truth,
                SliceEnumeration::new(vec![truth.clone()]),
                EstMode::Conservative,
                WakeSchedule::Simultaneous,
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    // Bounded sampling: each iteration is a full multi-thousand-round
    // simulation, so default sample counts would run for a long time.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = gather_known, gossip, gather_unknown
}
criterion_main!(benches);
