//! Hot-path microbenchmarks: CSR graph traversal and the engine round
//! loop, the two layers flattened by the simulation hot-path refactor.
//!
//! Besides the usual criterion report, running this bench writes the
//! `BENCH_hotpath.json` trajectory artifact (override the path with
//! `NOCHATTER_HOTPATH_OUT`): one JSON object per workload with its
//! measured mean iteration time and unit rate. The committed copy at the
//! workspace root is the perf trajectory — regenerate it with
//! `cargo bench --bench hotpath` after hot-path work and commit the diff.
//! CI runs the suite in `--test` mode (one tiny iteration per workload)
//! and diffs the *schema* of the emitted file — ids, units and field
//! names, never timings — so the artifact cannot silently rot.

use std::fmt::Write as _;
use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion, Throughput};

use nochatter_core::harness::{
    run_scenario_batch_with_scratch, run_scenario_with_scratch, GatherScenario,
};
use nochatter_core::{BehaviorSlot, CommMode};
use nochatter_explore::{Explo, Uxs};
use nochatter_graph::dynamic::SeededEdgeFailure;
use nochatter_graph::{algo, generators, Graph, InitialConfiguration, Label, NodeId, Port};
use nochatter_lab::{presets, run_campaign_cached, run_search_with, Store};
use nochatter_sim::proc::{ProcBehavior, Procedure, WaitRounds};
use nochatter_sim::FaultSpec;
use nochatter_sim::{
    Action, Declaration, Engine, EngineScratch, Obs, Poll, Sensing, Static, TopologySpec,
    WakeSchedule,
};
use std::sync::Arc;

fn label(v: u64) -> Label {
    Label::new(v).unwrap()
}

/// Walks forever: out of each node by the port after the entry port, which
/// varies the CSR row accessed every step.
struct Walker;
impl Procedure for Walker {
    type Output = ();
    fn poll(&mut self, obs: &Obs) -> Poll<()> {
        let next = obs.entry_port.map_or(0, |p| (p.number() + 1) % obs.degree);
        Poll::Yield(Action::TakePort(Port::new(next)))
    }
}

/// A port-chasing walk of `steps` edge traversals — the pure CSR lookup
/// chain with no engine around it. Returns the end node so the walk cannot
/// be optimized away.
fn csr_walk(g: &Graph, steps: u64) -> NodeId {
    let mut cur = NodeId::new(0);
    let mut port = Port::new(0);
    for _ in 0..steps {
        let (to, back) = g.neighbor(cur, port).expect("walk stays on valid ports");
        cur = to;
        port = Port::new((back.number() + 1) % g.degree(to));
    }
    cur
}

/// One engine run of `agents` walkers for `rounds` rounds on a ring,
/// through the caller's scratch.
fn engine_walk(g: &Graph, agents: u32, rounds: u64, sensing: Sensing, scratch: &mut EngineScratch) {
    let n = g.node_count() as u32;
    let mut engine = Engine::new(g);
    engine.set_sensing(sensing);
    for i in 0..agents {
        engine.add_agent(
            label(u64::from(i) + 1),
            NodeId::new(i * (n / agents) % n),
            Box::new(ProcBehavior::declaring(Walker)),
        );
    }
    engine.set_wake_schedule(WakeSchedule::Simultaneous);
    black_box(engine.run_with_scratch(rounds, scratch).unwrap());
}

/// The sparse-loop showcase workload: one walker circles the ring while
/// seven agents sit in a wait far longer than the run. The dense loop polls
/// all eight behaviors every round; the sparse loop polls the walker plus
/// whichever waiter the walker's moves dirty that round, so most
/// agent-rounds never touch a behavior at all. Outcomes are bitwise
/// identical either way (pinned by `sparse_dense.rs`).
fn engine_mixed_wait_walk(g: &Graph, dense: bool, rounds: u64, scratch: &mut EngineScratch) -> u64 {
    let n = g.node_count() as u32;
    let mut engine = Engine::new(g);
    engine.set_dense_loop(dense);
    engine.add_agent(
        label(1),
        NodeId::new(0),
        Box::new(ProcBehavior::declaring(Walker)),
    );
    for i in 1..8u32 {
        engine.add_agent(
            label(u64::from(i) + 1),
            NodeId::new(i * (n / 8) % n),
            Box::new(ProcBehavior::declaring(WaitRounds::new(rounds * 2))),
        );
    }
    engine.set_wake_schedule(WakeSchedule::Simultaneous);
    let outcome = engine.run_with_scratch(rounds, scratch).unwrap();
    black_box(outcome.polled_agent_rounds)
}

/// A walker that tolerates blocked moves: on `blocked` it re-attempts a
/// different port, so dynamic runs keep generating traversal attempts.
struct BlockedTolerantWalker;
impl Procedure for BlockedTolerantWalker {
    type Output = ();
    fn poll(&mut self, obs: &Obs) -> Poll<()> {
        let base = obs.entry_port.map_or(0, |p| p.number() + 1);
        let next = (base + u32::from(obs.blocked)) % obs.degree;
        Poll::Yield(Action::TakePort(Port::new(next)))
    }
}

/// [`engine_walk`] through the dynamic topology machinery: the engine is
/// monomorphized over `SpecView` and pays one edge-presence check per move
/// attempt. Compare against `round_loop/walkers` to see the per-round cost
/// of the dynamism axis.
fn engine_walk_dynamic(
    g: &Graph,
    topo: &TopologySpec,
    agents: u32,
    rounds: u64,
    scratch: &mut EngineScratch,
) {
    let n = g.node_count() as u32;
    let mut engine = Engine::with_topology(g, topo);
    for i in 0..agents {
        engine.add_agent(
            label(u64::from(i) + 1),
            NodeId::new(i * (n / agents) % n),
            Box::new(ProcBehavior::declaring(BlockedTolerantWalker)),
        );
    }
    engine.set_wake_schedule(WakeSchedule::Simultaneous);
    black_box(engine.run_with_scratch(rounds, scratch).unwrap());
}

/// The start nodes of `agents` walkers spread over an `n`-node graph.
fn spread_start(i: u32, agents: u32, n: u32) -> NodeId {
    NodeId::new(i * (n / agents) % n)
}

/// One engine run of `agents` EXPLO walkers to completion, with behaviors
/// stored *inline* as [`BehaviorSlot`]s: the built-in walker enum-dispatches
/// with no per-agent box and no vtable call. Identical workload to
/// [`explo_walk_boxed`] — the pair isolates the dispatch/storage cost.
fn explo_walk_slot(g: &Graph, uxs: &Arc<Uxs>, agents: u32, scratch: &mut EngineScratch) {
    let n = g.node_count() as u32;
    let mut engine: Engine<'_, Static, BehaviorSlot> = Engine::with_parts(g, &Static);
    for i in 0..agents {
        engine.add_agent(
            label(u64::from(i) + 1),
            spread_start(i, agents, n),
            BehaviorSlot::explo(Arc::clone(uxs)),
        );
    }
    engine.set_wake_schedule(WakeSchedule::Simultaneous);
    let limit = Explo::duration(uxs) + 2;
    black_box(engine.run_with_scratch(limit, scratch).unwrap());
}

/// The identical EXPLO workload through the historical storage: one
/// `Box<dyn AgentBehavior>` per agent, a vtable call per agent per round.
fn explo_walk_boxed(g: &Graph, uxs: &Arc<Uxs>, agents: u32, scratch: &mut EngineScratch) {
    let n = g.node_count() as u32;
    let mut engine = Engine::new(g);
    for i in 0..agents {
        engine.add_agent(
            label(u64::from(i) + 1),
            spread_start(i, agents, n),
            Box::new(ProcBehavior::mapping(Explo::new(Arc::clone(uxs)), |_| {
                Declaration::bare()
            })),
        );
    }
    engine.set_wake_schedule(WakeSchedule::Simultaneous);
    let limit = Explo::duration(uxs) + 2;
    black_box(engine.run_with_scratch(limit, scratch).unwrap());
}

/// Workload sizes: full measurement vs the one-iteration `--test` mode CI
/// uses for the schema check.
struct Scale {
    csr_steps: u64,
    bfs_n: u32,
    engine_rounds: u64,
    short_runs: u64,
    /// Steps of the pseudorandom sequence driving the dispatch-pair EXPLO
    /// walkers (one run = `2 * explo_steps + 1` rounds).
    explo_steps: usize,
    /// Per-instance evaluation budget of the hunt fork/scratch pair.
    hunt_budget: u64,
    iters: u64,
}

const FULL: Scale = Scale {
    csr_steps: 1_000_000,
    bfs_n: 1024,
    engine_rounds: 100_000,
    short_runs: 256,
    explo_steps: 8192,
    hunt_budget: 16,
    iters: 10,
};

const QUICK: Scale = Scale {
    csr_steps: 10_000,
    bfs_n: 64,
    engine_rounds: 1_000,
    short_runs: 8,
    explo_steps: 64,
    hunt_budget: 4,
    iters: 1,
};

fn scale() -> &'static Scale {
    if std::env::args().any(|a| a == "--test") {
        &QUICK
    } else {
        &FULL
    }
}

fn traversal_graph(n: u32) -> Graph {
    generators::random_connected(n, n, 7)
}

/// CSR traversal cost without the engine: chained `neighbor` lookups and a
/// whole-graph BFS.
fn csr_traversal(c: &mut Criterion) {
    let s = scale();
    let g = traversal_graph(s.bfs_n);
    let mut group = c.benchmark_group("csr");
    group.throughput(Throughput::Elements(s.csr_steps));
    group.bench_with_input(
        BenchmarkId::new("neighbor_walk", s.bfs_n),
        &g,
        |b, g: &Graph| b.iter(|| csr_walk(g, s.csr_steps)),
    );
    group.throughput(Throughput::Elements(u64::from(s.bfs_n)));
    group.bench_with_input(BenchmarkId::new("bfs", s.bfs_n), &g, |b, g: &Graph| {
        b.iter(|| algo::bfs_distances(g, NodeId::new(0)))
    });
    group.finish();
}

/// The engine round loop: long runs (per-round cost), short runs through a
/// reused scratch (steady-state allocation-free execution), and the
/// traditional-sensing variant (peer-label scratch buffer).
fn round_loop(c: &mut Criterion) {
    let s = scale();
    let g = generators::ring(32);
    let mut group = c.benchmark_group("round_loop");
    for agents in [2u32, 8, 16] {
        group.throughput(Throughput::Elements(s.engine_rounds * u64::from(agents)));
        group.bench_with_input(
            BenchmarkId::new("walkers", agents),
            &agents,
            |b, &agents| {
                let mut scratch = EngineScratch::new();
                b.iter(|| engine_walk(&g, agents, s.engine_rounds, Sensing::Weak, &mut scratch))
            },
        );
    }
    group.throughput(Throughput::Elements(s.engine_rounds * 8));
    group.bench_function("walkers_traditional/8", |b| {
        let mut scratch = EngineScratch::new();
        b.iter(|| engine_walk(&g, 8, s.engine_rounds, Sensing::Traditional, &mut scratch))
    });
    // The dynamic-view loop: same walk through the `SpecView`
    // monomorphization with a seeded edge-failure adversary. Not part of
    // the emitted trajectory artifact (its schema is pinned); criterion
    // reports the static-vs-dynamic per-round delta.
    group.bench_function("walkers_dynamic_failure/8", |b| {
        let topo = TopologySpec::EdgeFailure(SeededEdgeFailure { p: 0.1, seed: 9 });
        let mut scratch = EngineScratch::new();
        b.iter(|| engine_walk_dynamic(&g, &topo, 8, s.engine_rounds, &mut scratch))
    });
    // The sparse-vs-dense loop pair on the mixed wait/walk workload (one
    // walker, seven long waiters): same rounds, same outcome bytes, the
    // delta is the per-round cost of polling parked behaviors the sparse
    // loop skips.
    group.throughput(Throughput::Elements(s.engine_rounds * 8));
    group.bench_function("mixed_wait_walk/a8", |b| {
        let mut scratch = EngineScratch::new();
        b.iter(|| engine_mixed_wait_walk(&g, false, s.engine_rounds, &mut scratch))
    });
    group.bench_function("mixed_wait_walk_dense/a8", |b| {
        let mut scratch = EngineScratch::new();
        b.iter(|| engine_mixed_wait_walk(&g, true, s.engine_rounds, &mut scratch))
    });
    // The dispatch pair: the identical EXPLO workload stored as inline
    // enum slots vs one box per agent. The pair isolates the
    // dispatch/storage axis of the data-oriented agent arena: the enum
    // replaces the per-agent vtable chase with a jump table and removes
    // the per-agent heap allocation entirely (behavior state lives inline
    // in the arena). On hardware with good indirect-branch prediction the
    // per-round times come out close — the honest reading is that the
    // slot storage wins structurally (zero boxes, one contiguous arena)
    // at per-round dispatch parity; the pair keeps that claim measured
    // rather than assumed.
    // An uncertified pseudorandom sequence is fine here: EXPLO is only a
    // walk driver for the dispatch measurement, and a long sequence keeps
    // engine setup (arena growth, validation) amortized into noise.
    let uxs = Arc::new(Uxs::pseudorandom(s.explo_steps, 7));
    let explo_rounds = Explo::duration(&uxs) + 1;
    group.throughput(Throughput::Elements(explo_rounds * 8));
    group.bench_function("walkers_enum_dispatch/8", |b| {
        let mut scratch = EngineScratch::new();
        b.iter(|| explo_walk_slot(&g, &uxs, 8, &mut scratch))
    });
    group.bench_function("walkers_box_dispatch/8", |b| {
        let mut scratch = EngineScratch::new();
        b.iter(|| explo_walk_boxed(&g, &uxs, 8, &mut scratch))
    });
    // Many short runs: the regime where per-run allocations dominated
    // before `run_with_scratch` existed.
    group.throughput(Throughput::Elements(s.short_runs));
    group.bench_function("short_runs_scratch_reuse", |b| {
        let mut scratch = EngineScratch::new();
        b.iter(|| {
            for _ in 0..s.short_runs {
                engine_walk(&g, 8, 64, Sensing::Weak, &mut scratch);
            }
        })
    });
    group.bench_function("short_runs_fresh_alloc", |b| {
        b.iter(|| {
            for _ in 0..s.short_runs {
                engine_walk(&g, 8, 64, Sensing::Weak, &mut EngineScratch::new());
            }
        })
    });
    group.finish();
}

/// One campaign instance: the graph + team every `campaign_cells` cell
/// shares, exactly what the lab runner's instance sub-key grouping holds
/// fixed across a batch.
fn campaign_instance() -> InitialConfiguration {
    InitialConfiguration::new(
        generators::ring(8),
        vec![(label(2), NodeId::new(0)), (label(3), NodeId::new(4))],
    )
    .expect("distinct labels on distinct nodes")
}

/// The 8 execution-axis cells of one instance: 2 sensing modes × 2 wake
/// schedules × {static, seeded edge-failure} — the cell mix a campaign
/// sweeps per instance. All share the configuration and seed, so the
/// batched pass builds the exploration-sequence corpus once for all 8.
fn campaign_cells(cfg: &InitialConfiguration) -> Vec<GatherScenario<'_>> {
    let mut cells = Vec::new();
    for mode in [CommMode::Silent, CommMode::Talking] {
        for schedule in [WakeSchedule::Simultaneous, WakeSchedule::FirstOnly] {
            for topo in [
                TopologySpec::Static,
                TopologySpec::EdgeFailure(SeededEdgeFailure { p: 0.1, seed: 9 }),
            ] {
                cells.push(GatherScenario {
                    cfg,
                    mode,
                    schedule: schedule.clone(),
                    topo,
                    fault: FaultSpec::None,
                    seed: 2020,
                    trace_capacity: None,
                });
            }
        }
    }
    cells
}

/// The batched-vs-solo campaign-cell pair: the same 8 cells through one
/// `BatchEngine` pass (one setup, one interleaved loop) vs eight
/// individual `run_scenario` calls (per-cell setup). Outcomes are bitwise
/// identical (pinned by tests); the delta is the batching amortization the
/// campaign runner banks on every instance group.
fn campaign_cells_pair(c: &mut Criterion) {
    let cfg = campaign_instance();
    let cells = campaign_cells(&cfg);
    let mut group = c.benchmark_group("campaign_cells");
    group.throughput(Throughput::Elements(cells.len() as u64));
    group.bench_function("batched/k8", |b| {
        let mut scratch = EngineScratch::new();
        b.iter(|| black_box(run_scenario_batch_with_scratch(&cells, &mut scratch)))
    });
    group.bench_function("solo/k8", |b| {
        let mut scratch = EngineScratch::new();
        b.iter(|| {
            for cell in &cells {
                black_box(
                    run_scenario_with_scratch(
                        cell.cfg,
                        cell.mode,
                        cell.schedule.clone(),
                        &cell.topo,
                        &cell.fault,
                        cell.seed,
                        cell.trace_capacity,
                        &mut scratch,
                    )
                    .expect("campaign cells run clean"),
                );
            }
        })
    });
    group.finish();
}

/// The result-store cache pair: the 8-cell smoke campaign through the lab
/// runner against a cold store (fresh directory per iteration — every cell
/// simulates, then writes through) vs a warm store (every cell loads, zero
/// engine rounds). The delta is the end-to-end speedup a resumed or
/// re-analyzed campaign gets from `--cache-dir`; reports are byte-identical
/// either way (pinned by the lab's store tests).
fn campaign_cache_pair(c: &mut Criterion) {
    let campaign = presets::smoke_campaign();
    let dir = std::env::temp_dir().join("nochatter-bench-campaign-cache");
    let mut group = c.benchmark_group("campaign_cells");
    group.throughput(Throughput::Elements(campaign.len() as u64));
    group.bench_function("cold/k8", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let store = Store::open(&dir).expect("temp cache dir is writable");
            black_box(run_campaign_cached(&campaign, 1, Some(&store)))
        })
    });
    group.bench_function("warm/k8", |b| {
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("temp cache dir is writable");
        run_campaign_cached(&campaign, 1, Some(&store));
        b.iter(|| black_box(run_campaign_cached(&campaign, 1, Some(&store))))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The checkpoint/fork pair: the late-outage hunt (every candidate
/// diverges from the incumbent deep in the endgame, so forked evaluation
/// resumes past ~3/4 of each run) with candidate forking on vs forcibly
/// off. Reports are byte-identical either way (pinned by the lab's search
/// tests); the wall-time delta here is the echo of the executed-rounds
/// reduction the trajectory artifact records hardware-independently.
fn hunt_evals_pair(c: &mut Criterion) {
    let spec = presets::late_outage_spec(scale().hunt_budget);
    let mut group = c.benchmark_group("hunt_evals");
    group.throughput(Throughput::Elements(
        spec.budget * spec.instances.len() as u64,
    ));
    group.bench_function("forked", |b| {
        b.iter(|| black_box(run_search_with(&spec, 1, None, true)))
    });
    group.bench_function("scratch", |b| {
        b.iter(|| black_box(run_search_with(&spec, 1, None, false)))
    });
    group.finish();
}

/// One measured trajectory entry of `BENCH_hotpath.json`.
struct Entry {
    /// Stable workload name — identical in quick and full mode, so the CI
    /// schema diff can compare a quick run against the committed full run.
    id: &'static str,
    /// The mode-dependent size knob (graph size, rounds, runs).
    param: u64,
    unit: &'static str,
    units_per_iter: u64,
    iters: u64,
    total_ns: u128,
}

impl Entry {
    fn mean_ns(&self) -> u128 {
        self.total_ns / u128::from(self.iters.max(1))
    }

    fn units_per_sec(&self) -> f64 {
        let total = (self.units_per_iter * self.iters) as f64;
        total / (self.total_ns.max(1) as f64 / 1e9)
    }
}

fn measure(
    id: &'static str,
    param: u64,
    unit: &'static str,
    units_per_iter: u64,
    iters: u64,
    mut routine: impl FnMut(),
) -> Entry {
    // One warm-up iteration, then a single timed block — the trajectory
    // wants a stable order-of-magnitude point, not criterion statistics.
    routine();
    let t0 = Instant::now();
    for _ in 0..iters {
        routine();
    }
    Entry {
        id,
        param,
        unit,
        units_per_iter,
        iters,
        total_ns: t0.elapsed().as_nanos(),
    }
}

/// Measures the fixed trajectory workloads and writes
/// `BENCH_hotpath.json` (path from `NOCHATTER_HOTPATH_OUT` if set).
fn emit_trajectory(quick: bool) {
    let s = scale();
    let g = traversal_graph(s.bfs_n);
    let ring = generators::ring(32);
    let uxs = Arc::new(Uxs::pseudorandom(s.explo_steps, 7));
    let explo_rounds = Explo::duration(&uxs) + 1;
    let mut scratch = EngineScratch::new();
    let entries = [
        measure(
            "csr/neighbor_walk",
            u64::from(s.bfs_n),
            "steps",
            s.csr_steps,
            s.iters,
            || {
                black_box(csr_walk(&g, s.csr_steps));
            },
        ),
        measure(
            "csr/bfs",
            u64::from(s.bfs_n),
            "nodes",
            u64::from(s.bfs_n),
            s.iters,
            || {
                black_box(algo::bfs_distances(&g, NodeId::new(0)));
            },
        ),
        measure(
            "round_loop/walkers/a8",
            s.engine_rounds,
            "agent_rounds",
            s.engine_rounds * 8,
            s.iters,
            || engine_walk(&ring, 8, s.engine_rounds, Sensing::Weak, &mut scratch),
        ),
        measure(
            "round_loop/walkers_traditional/a8",
            s.engine_rounds,
            "agent_rounds",
            s.engine_rounds * 8,
            s.iters,
            || {
                engine_walk(
                    &ring,
                    8,
                    s.engine_rounds,
                    Sensing::Traditional,
                    &mut scratch,
                )
            },
        ),
        {
            // `units_per_iter` carries the hardware-independent fact: the
            // behavior polls the run actually issues. The pair executes the
            // byte-identical simulation, so the dense-to-sparse unit ratio
            // *is* the poll reduction — wall-clock never inflates it.
            let polled = engine_mixed_wait_walk(&ring, false, s.engine_rounds, &mut scratch);
            measure(
                "round_loop/mixed_wait_walk/a8",
                s.engine_rounds,
                "polled_rounds",
                polled,
                s.iters,
                || {
                    engine_mixed_wait_walk(&ring, false, s.engine_rounds, &mut scratch);
                },
            )
        },
        {
            let polled = engine_mixed_wait_walk(&ring, true, s.engine_rounds, &mut scratch);
            measure(
                "round_loop/mixed_wait_walk_dense/a8",
                s.engine_rounds,
                "polled_rounds",
                polled,
                s.iters,
                || {
                    engine_mixed_wait_walk(&ring, true, s.engine_rounds, &mut scratch);
                },
            )
        },
        measure(
            "round_loop/short_runs_scratch_reuse",
            s.short_runs,
            "runs",
            s.short_runs,
            s.iters,
            || {
                for _ in 0..s.short_runs {
                    engine_walk(&ring, 8, 64, Sensing::Weak, &mut scratch);
                }
            },
        ),
        measure(
            "round_loop/walkers_enum_dispatch/a8",
            explo_rounds,
            "agent_rounds",
            explo_rounds * 8,
            s.iters,
            || explo_walk_slot(&ring, &uxs, 8, &mut scratch),
        ),
        measure(
            "round_loop/walkers_box_dispatch/a8",
            explo_rounds,
            "agent_rounds",
            explo_rounds * 8,
            s.iters,
            || explo_walk_boxed(&ring, &uxs, 8, &mut scratch),
        ),
        {
            let cfg = campaign_instance();
            let cells = campaign_cells(&cfg);
            measure(
                "campaign_cells/batched/k8",
                cells.len() as u64,
                "cells",
                cells.len() as u64,
                s.iters,
                || {
                    black_box(run_scenario_batch_with_scratch(&cells, &mut scratch));
                },
            )
        },
        {
            let cfg = campaign_instance();
            let cells = campaign_cells(&cfg);
            measure(
                "campaign_cells/solo/k8",
                cells.len() as u64,
                "cells",
                cells.len() as u64,
                s.iters,
                || {
                    for cell in &cells {
                        black_box(
                            run_scenario_with_scratch(
                                cell.cfg,
                                cell.mode,
                                cell.schedule.clone(),
                                &cell.topo,
                                &cell.fault,
                                cell.seed,
                                cell.trace_capacity,
                                &mut scratch,
                            )
                            .expect("campaign cells run clean"),
                        );
                    }
                },
            )
        },
        {
            let campaign = presets::smoke_campaign();
            let dir = std::env::temp_dir().join("nochatter-bench-trajectory-cache");
            let k = campaign.len() as u64;
            measure("campaign_cells/cold/k8", k, "cells", k, s.iters, || {
                let _ = std::fs::remove_dir_all(&dir);
                let store = Store::open(&dir).expect("temp cache dir is writable");
                black_box(run_campaign_cached(&campaign, 1, Some(&store)));
            })
        },
        {
            let spec = presets::late_outage_spec(s.hunt_budget);
            // `units_per_iter` carries the hardware-independent fact: the
            // engine iterations one search actually executes. The forked
            // and scratch entries run the byte-identical search, so their
            // unit counts divide into the honest per-evaluation reduction.
            let rounds = run_search_with(&spec, 1, None, true).total_executed_rounds();
            measure(
                "hunt_evals/forked",
                s.hunt_budget,
                "executed_rounds",
                rounds,
                s.iters,
                || {
                    black_box(run_search_with(&spec, 1, None, true));
                },
            )
        },
        {
            let spec = presets::late_outage_spec(s.hunt_budget);
            let rounds = run_search_with(&spec, 1, None, false).total_executed_rounds();
            measure(
                "hunt_evals/scratch",
                s.hunt_budget,
                "executed_rounds",
                rounds,
                s.iters,
                || {
                    black_box(run_search_with(&spec, 1, None, false));
                },
            )
        },
        {
            // The dr1/fr1 quick preset is the fork engine's worst case —
            // its wake/crash axes diverge within the first few hundred
            // rounds of runs lasting tens of thousands, so there is
            // almost no prefix to share. Recording it beside the
            // late-outage pair keeps the trajectory honest about both
            // regimes instead of showcasing only the favorable one.
            let spec = presets::hunt_spec(true);
            let rounds = run_search_with(&spec, 1, None, true).total_executed_rounds();
            measure(
                "hunt_evals/quick_forked",
                spec.budget,
                "executed_rounds",
                rounds,
                s.iters,
                || {
                    black_box(run_search_with(&spec, 1, None, true));
                },
            )
        },
        {
            let spec = presets::hunt_spec(true);
            let rounds = run_search_with(&spec, 1, None, false).total_executed_rounds();
            measure(
                "hunt_evals/quick_scratch",
                spec.budget,
                "executed_rounds",
                rounds,
                s.iters,
                || {
                    black_box(run_search_with(&spec, 1, None, false));
                },
            )
        },
        {
            let campaign = presets::smoke_campaign();
            let dir = std::env::temp_dir().join("nochatter-bench-trajectory-cache");
            let k = campaign.len() as u64;
            let _ = std::fs::remove_dir_all(&dir);
            let store = Store::open(&dir).expect("temp cache dir is writable");
            run_campaign_cached(&campaign, 1, Some(&store));
            let entry = measure("campaign_cells/warm/k8", k, "cells", k, s.iters, || {
                black_box(run_campaign_cached(&campaign, 1, Some(&store)));
            });
            let _ = std::fs::remove_dir_all(&dir);
            entry
        },
    ];
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"hotpath\",");
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"param\": {}, \"unit\": \"{}\", \
             \"units_per_iter\": {}, \"iters\": {}, \"mean_ns\": {}, \
             \"units_per_sec\": {:.1}}}{comma}",
            e.id,
            e.param,
            e.unit,
            e.units_per_iter,
            e.iters,
            e.mean_ns(),
            e.units_per_sec(),
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    // Cargo runs bench binaries from the package directory, so resolve
    // the default and any relative `NOCHATTER_HOTPATH_OUT` override
    // against the workspace root. Quick mode defaults under `target/`:
    // a stray `cargo test --benches` must not clobber the committed
    // full-mode trajectory with one-iteration numbers.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let default = if quick {
        "target/BENCH_hotpath.json"
    } else {
        "BENCH_hotpath.json"
    };
    let path = std::env::var_os("NOCHATTER_HOTPATH_OUT")
        .map_or_else(|| default.into(), std::path::PathBuf::from);
    let path = if path.is_absolute() {
        path
    } else {
        root.join(path)
    };
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

criterion_group! {
    name = benches;
    // Each iteration is a full walk or simulation; bound the sampling.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = csr_traversal, round_loop, campaign_cells_pair, campaign_cache_pair, hunt_evals_pair
}

fn main() {
    // Mirror `criterion_main!`, plus trajectory emission: cargo's bench
    // runner passes flags like `--bench`; `--test` (from `cargo test
    // --benches` or the CI schema step) switches to one tiny iteration
    // per workload.
    let quick = std::env::args().any(|a| a == "--test");
    if quick {
        criterion::set_test_mode(true);
    }
    benches();
    emit_trajectory(quick);
}
