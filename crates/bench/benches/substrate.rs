//! Criterion microbenchmarks for the simulation substrate: engine
//! throughput, UXS certification, exploration and rendezvous.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use nochatter_explore::{Explo, Uxs};
use nochatter_graph::{generators, Label, NodeId};
use nochatter_rendezvous::Tz;
use nochatter_sim::proc::{ProcBehavior, Procedure, UntilCardExceeds, WaitRounds};
use nochatter_sim::{Engine, Obs, WakeSchedule};

fn label(v: u64) -> Label {
    Label::new(v).unwrap()
}

/// Raw engine round throughput: agents that walk forever on a ring.
fn engine_throughput(c: &mut Criterion) {
    struct Walker;
    impl Procedure for Walker {
        type Output = ();
        fn poll(&mut self, _obs: &Obs) -> nochatter_sim::Poll<()> {
            nochatter_sim::Poll::Yield(nochatter_sim::Action::TakePort(nochatter_graph::Port::new(
                1,
            )))
        }
    }
    let mut group = c.benchmark_group("engine");
    for agents in [2u32, 8, 16] {
        let g = generators::ring(32);
        group.throughput(Throughput::Elements(100_000 * u64::from(agents)));
        group.bench_with_input(
            BenchmarkId::new("walking_rounds", agents),
            &agents,
            |b, &agents| {
                b.iter(|| {
                    let mut engine = Engine::new(&g);
                    for i in 0..agents {
                        engine.add_agent(
                            label(u64::from(i) + 1),
                            NodeId::new(2 * i % 32),
                            Box::new(ProcBehavior::declaring(Walker)),
                        );
                    }
                    engine.set_wake_schedule(WakeSchedule::Simultaneous);
                    engine.run(100_000).unwrap()
                })
            },
        );
    }
    // Quiescent rounds: measures the fast-forward path.
    group.bench_function("quiescent_million_rounds", |b| {
        let g = generators::ring(8);
        b.iter(|| {
            let mut engine = Engine::new(&g);
            for i in 0..4u32 {
                engine.add_agent(
                    label(u64::from(i) + 1),
                    NodeId::new(2 * i),
                    Box::new(ProcBehavior::declaring(WaitRounds::new(1_000_000))),
                );
            }
            engine.run(2_000_000).unwrap()
        })
    });
    group.finish();
}

/// Certified UXS construction cost over growing corpora.
fn uxs_certification(c: &mut Criterion) {
    let mut group = c.benchmark_group("uxs");
    for n in [8u32, 16, 24] {
        let corpus = vec![
            generators::ring(n),
            generators::random_connected(n, n / 2, 7),
            generators::grid(
                (n as f64).sqrt().ceil() as u32,
                (n as f64).sqrt().ceil() as u32,
            ),
        ];
        group.bench_with_input(BenchmarkId::new("covering", n), &corpus, |b, corpus| {
            b.iter(|| Uxs::covering(corpus, 3).unwrap())
        });
    }
    group.finish();
}

/// One full EXPLO execution in the engine.
fn explo_execution(c: &mut Criterion) {
    let g = generators::random_connected(16, 8, 5);
    let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 9).unwrap());
    c.bench_function("explo_16_nodes", |b| {
        b.iter(|| {
            let mut engine = Engine::new(&g);
            engine.add_agent(
                label(1),
                NodeId::new(0),
                Box::new(ProcBehavior::declaring(Explo::new(Arc::clone(&uxs)))),
            );
            engine.add_agent(
                label(2),
                NodeId::new(8),
                Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
            );
            engine.run(1_000_000).unwrap()
        })
    });
}

/// Two-agent rendezvous via TZ until meeting.
fn tz_rendezvous(c: &mut Criterion) {
    let g = generators::ring(12);
    let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 2).unwrap());
    c.bench_function("tz_meeting_ring12", |b| {
        b.iter(|| {
            let mut engine = Engine::new(&g);
            for (l, start) in [(5u64, 0u32), (9, 6)] {
                engine.add_agent(
                    label(l),
                    NodeId::new(start),
                    Box::new(ProcBehavior::declaring(UntilCardExceeds::new(
                        1,
                        Tz::new(l, Arc::clone(&uxs)),
                    ))),
                );
            }
            engine.run(10_000_000).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    // Bounded sampling: each iteration is a full multi-thousand-round
    // simulation, so default sample counts would run for a long time.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = engine_throughput, uxs_certification, explo_execution, tz_rendezvous
}
criterion_main!(benches);
