//! Regenerates the reproduction's tables and figures (see `DESIGN.md` §5).
//!
//! ```text
//! experiments [--quick] [ids...]
//! experiments all            # every experiment, full sweeps
//! experiments --quick all    # every experiment, reduced sweeps
//! experiments t1 f3          # a subset
//! ```

use std::process::ExitCode;

use nochatter_bench::{all_experiment_ids, run_experiment, ExperimentCtx};

fn main() -> ExitCode {
    let mut quick = false;
    let mut ids: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--quick] [all | {}]",
                    all_experiment_ids().join(" | ")
                );
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = all_experiment_ids().iter().map(|s| s.to_string()).collect();
    }
    let ctx = ExperimentCtx { quick };
    eprintln!(
        "# nochatter experiments ({} mode)",
        if quick { "quick" } else { "full" }
    );
    for id in &ids {
        let start = std::time::Instant::now();
        match run_experiment(id, ctx) {
            Some(table) => {
                print!("{}", table.to_markdown());
                eprintln!("[{id} finished in {:?}]", start.elapsed());
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
