//! Regenerates the reproduction's tables and figures (see `DESIGN.md` §5)
//! and runs declarative scenario campaigns.
//!
//! ```text
//! experiments [--quick] [ids...]
//! experiments all            # every experiment, full sweeps
//! experiments --quick all    # every experiment, reduced sweeps
//! experiments t1 f3          # a subset
//!
//! experiments campaign [--quick | --smoke] [--workers N] [--seed S] [--out DIR]
//!             [--cache-dir DIR | --no-cache]
//! experiments hunt [--quick | --smoke] [--workers N] [--seed S] [--budget B]
//!             [--no-fork] [--out DIR] [--cache-dir DIR | --no-cache]
//! ```
//!
//! The `campaign` subcommand expands the demo campaign (8 graph families ×
//! sizes × teams × wake schedules × 3 topologies × both sensing modes;
//! 560 scenarios), or
//! the tiny CI smoke campaign with `--smoke`, shards it over `--workers`
//! threads (0 = all cores), and writes `<name>.json`, `<name>.csv` and
//! `BENCH_campaign.json` under `--out` (default `target/campaign`). The
//! JSON/CSV reports are bit-for-bit identical for any worker count.
//!
//! The `hunt` subcommand runs the budgeted adversary search over the hunt
//! preset instances, maximizing the silent-failure objective, and writes
//! `<name>.json`, `<name>.csv` and `BENCH_search.json` under `--out`
//! (default `target/hunt`). Candidates fork from checkpoints of the
//! incumbent's run by default; `--no-fork` (or `NOCHATTER_NO_FORK=1`)
//! evaluates everything from scratch instead. Like the campaign reports,
//! the witness reports are bit-for-bit identical for any worker count,
//! with forking on or off; `--budget 0` records each instance's
//! unperturbed baseline as its witness.
//!
//! `--cache-dir DIR` runs either subcommand against the persistent result
//! store under `DIR`: previously computed records load instead of
//! simulating, completed work writes through immediately (killed runs
//! resume), and the reports stay byte-identical to uncached runs.
//! `--no-cache` wins over `--cache-dir` when both are given.

use std::process::ExitCode;

use nochatter_bench::{all_experiment_ids, run_experiment, ExperimentCtx};
use nochatter_lab::{presets, run_campaign_cached, run_search_with, Store};

/// The flags shared by the `campaign` and `hunt` subcommands, parsed by
/// one helper so the two cannot drift. `--budget` is accepted only where
/// the caller opts in (the hunt).
struct SweepArgs {
    quick: bool,
    smoke: bool,
    workers: usize,
    seed: Option<u64>,
    budget: Option<u64>,
    out_dir: std::path::PathBuf,
    cache_dir: Option<std::path::PathBuf>,
    no_cache: bool,
    no_fork: bool,
}

impl SweepArgs {
    /// Parses `args` for `subcommand` (named in error messages), with
    /// `default_out` as the `--out` fallback; `with_budget` gates the
    /// hunt-only `--budget` flag.
    fn parse(
        args: &[String],
        subcommand: &str,
        default_out: &str,
        with_budget: bool,
    ) -> Result<SweepArgs, String> {
        let mut parsed = SweepArgs {
            quick: false,
            smoke: false,
            workers: 0,
            seed: None,
            budget: None,
            out_dir: default_out.into(),
            cache_dir: None,
            no_cache: false,
            no_fork: false,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value_for = |flag: &str| {
                iter.next()
                    .map(ToOwned::to_owned)
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--quick" => parsed.quick = true,
                "--smoke" => parsed.smoke = true,
                "--no-cache" => parsed.no_cache = true,
                "--workers" => match value_for("--workers").map(|v| v.parse()) {
                    Ok(Ok(w)) => parsed.workers = w,
                    _ => return Err("--workers needs a number".into()),
                },
                "--seed" => match value_for("--seed").map(|v| v.parse()) {
                    Ok(Ok(s)) => parsed.seed = Some(s),
                    _ => return Err("--seed needs a number".into()),
                },
                // --budget 0 is meaningful: record the unperturbed
                // baseline as the witness without mutating anything.
                "--budget" if with_budget => match value_for("--budget").map(|v| v.parse()) {
                    Ok(Ok(b)) => parsed.budget = Some(b),
                    _ => return Err("--budget needs a number".into()),
                },
                "--no-fork" if with_budget => parsed.no_fork = true,
                "--out" => parsed.out_dir = value_for("--out")?.into(),
                "--cache-dir" => parsed.cache_dir = Some(value_for("--cache-dir")?.into()),
                other => return Err(format!("unknown {subcommand} option: {other}")),
            }
        }
        Ok(parsed)
    }

    /// Opens the result store when `--cache-dir` was given and
    /// `--no-cache` was not.
    fn open_store(&self) -> Result<Option<Store>, String> {
        match &self.cache_dir {
            Some(dir) if !self.no_cache => Store::open(dir)
                .map(Some)
                .map_err(|e| format!("cannot open result store under {}: {e}", dir.display())),
            _ => Ok(None),
        }
    }
}

/// One summary line per cached run: hit/miss/resume counts plus any
/// degradation the store observed (corrupt entries skipped, failed
/// writes). Prints nothing with caching off, keeping uncached output
/// byte-identical to the pre-cache CLI.
fn report_cache(
    cache: Option<nochatter_lab::CacheStats>,
    store: Option<&Store>,
    total: u64,
    what: &str,
) {
    let (Some(cache), Some(store)) = (cache, store) else {
        return;
    };
    eprintln!(
        "cache: {} hit(s), {} miss(es) — resumed {}/{} {what} from {}",
        cache.hits,
        cache.misses,
        cache.hits,
        total,
        store.path().display()
    );
    let stats = store.stats();
    if stats.corrupt_entries > 0 {
        eprintln!(
            "cache: skipped {} corrupt log region(s) (degraded to misses)",
            stats.corrupt_entries
        );
    }
    if stats.write_errors > 0 {
        eprintln!(
            "cache: {} record(s) could not be written through (run continued uncached)",
            stats.write_errors
        );
    }
}

fn run_campaign_cli(args: &[String]) -> ExitCode {
    let parsed = match SweepArgs::parse(args, "campaign", "target/campaign", false) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Expanding the matrix under the chosen seed means a custom --seed
    // re-derives random-family instances along with the scenario seeds.
    // (--quick only shrinks the demo matrix; the smoke matrix is fixed.)
    let (matrix, name, default_seed) = if parsed.smoke {
        (presets::smoke_matrix(), "smoke", presets::SMOKE_SEED)
    } else if parsed.quick {
        (presets::demo_matrix(true), "demo-quick", presets::DEMO_SEED)
    } else {
        (presets::demo_matrix(false), "demo", presets::DEMO_SEED)
    };
    let campaign = matrix
        .campaign(name, parsed.seed.unwrap_or(default_seed))
        .expect("preset matrices are well-formed");
    eprintln!(
        "# campaign '{}': {} scenarios, seed {}",
        campaign.name(),
        campaign.len(),
        campaign.seed()
    );
    let store = match parsed.open_store() {
        Ok(store) => store,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = run_campaign_cached(&campaign, parsed.workers, store.as_ref());
    let out_dir = &parsed.out_dir;
    let artifacts = match report.write_files(out_dir) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot write reports under {}: {e}", out_dir.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "{}/{} scenarios ok in {:?} on {} worker(s)",
        report.ok_count(),
        report.records.len(),
        report.wall,
        report.workers
    );
    // Rates are None when the run was too fast to time (no inflating
    // floor); `rounds/s` counts fast-forwarded model time, `executed` is
    // the honest work rate.
    let fixed = |v: Option<f64>| v.map_or_else(|| "n/a".to_string(), |x| format!("{x:.0}"));
    let sci = |v: Option<f64>| v.map_or_else(|| "n/a".to_string(), |x| format!("{x:.3e}"));
    eprintln!(
        "throughput: {} scenarios/s, {} executed rounds/s ({} model rounds/s, {} engine iterations/s)",
        fixed(report.scenarios_per_sec()),
        sci(report.executed_rounds_per_sec()),
        sci(report.rounds_per_sec()),
        sci(report.engine_iterations_per_sec())
    );
    report_cache(
        report.cache,
        store.as_ref(),
        report.records.len() as u64,
        "cells",
    );
    eprintln!(
        "wrote {}, {}, {}",
        artifacts.json.display(),
        artifacts.csv.display(),
        artifacts.trajectory.display()
    );
    // Static cells must all gather — a failure there is a regression. A
    // dynamic cell that fails *validation* is an experimental outcome:
    // the paper's algorithm assumes a static network, and the campaign
    // quantifies where that assumption bites (the report carries the
    // blocked-move counts). Engine errors and unsupported cells are bugs
    // on any topology and still fail the run.
    let is_expected = |r: &&nochatter_lab::RunRecord| {
        r.key.topo != "static"
            && !r.status.starts_with("engine error")
            && !r.status.starts_with("unsupported")
    };
    let expected_dynamic = report
        .records
        .iter()
        .filter(|r| !r.ok)
        .filter(is_expected)
        .count();
    if expected_dynamic > 0 {
        eprintln!(
            "{expected_dynamic} dynamic cell(s) did not survive their adversary \
             (expected for the silent algorithm on dynamic topologies; see the \
             report's status and blocked_moves fields)"
        );
    }
    let hard_failures: Vec<_> = report
        .records
        .iter()
        .filter(|r| !r.ok)
        .filter(|r| !is_expected(r))
        .collect();
    if hard_failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for r in hard_failures {
            eprintln!("FAILED {}: {}", r.key, r.status);
        }
        ExitCode::FAILURE
    }
}

fn run_hunt_cli(args: &[String]) -> ExitCode {
    let parsed = match SweepArgs::parse(args, "hunt", "target/hunt", true) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // A custom --seed honestly re-derives the base instances under it
    // (graphs and scenario seeds included), mirroring the campaign CLI.
    let seed = parsed.seed.unwrap_or(presets::HUNT_SEED);
    let mut spec = if parsed.smoke {
        presets::hunt_smoke_spec_seeded(seed)
    } else {
        presets::hunt_spec_seeded(parsed.quick, seed)
    };
    if let Some(b) = parsed.budget {
        spec.budget = b;
    }
    eprintln!(
        "# hunt '{}': {} instances, budget {} per instance, objective {}, seed {}",
        spec.name,
        spec.instances.len(),
        spec.budget,
        spec.objective.name(),
        spec.seed
    );
    if spec.budget == 0 {
        eprintln!(
            "budget 0: recording each instance's unperturbed baseline as its \
             witness — no mutations will be tried"
        );
    }
    let store = match parsed.open_store() {
        Ok(store) => store,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // `--no-fork` (or NOCHATTER_NO_FORK=1) forces every candidate to run
    // from scratch; the reports are byte-identical either way (CI diffs
    // them), so the flag exists for exactly that check and for bisecting.
    let fork = !parsed.no_fork && std::env::var_os("NOCHATTER_NO_FORK").is_none();
    let report = run_search_with(&spec, parsed.workers, store.as_ref(), fork);
    for outcome in &report.outcomes {
        let verdict = if outcome.is_failure() {
            "FALSIFIED"
        } else {
            "held"
        };
        eprintln!(
            "{verdict} {} after {} evaluation(s), {} improvement(s): {} ({} rounds)",
            outcome.instance,
            outcome.evaluations,
            outcome.improvements,
            outcome.record.status,
            outcome.record.rounds
        );
    }
    let out_dir = &parsed.out_dir;
    let artifacts = match report.write_files(out_dir) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot write reports under {}: {e}", out_dir.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "{}/{} instances falsified with {} evaluation(s) in {:?} on {} worker(s)",
        report.failure_count(),
        report.outcomes.len(),
        report.total_evaluations(),
        report.wall,
        report.workers
    );
    // Execution facts (they never enter the deterministic reports): how
    // hard the engine actually worked, and how much of it forking skipped.
    let fixed = |v: Option<f64>| v.map_or_else(|| "n/a".to_string(), |x| format!("{x:.1}"));
    eprintln!(
        "work: {} executed rounds ({} per evaluation), {} evaluations/s",
        report.total_executed_rounds(),
        fixed(report.executed_rounds_per_evaluation()),
        fixed(report.evaluations_per_sec())
    );
    if fork {
        eprintln!(
            "fork: {} of {} evaluation(s) resumed from checkpoints, {} executed \
             rounds saved gross ({} spent building ladders)",
            report.total_forked_evals(),
            report.total_evaluations(),
            report.total_rounds_saved(),
            report.total_ladder_rounds()
        );
    } else {
        eprintln!("fork: off (every candidate evaluated from scratch)");
    }
    report_cache(
        report.cache,
        store.as_ref(),
        report.total_evaluations(),
        "evaluations",
    );
    eprintln!(
        "wrote {}, {}, {}",
        artifacts.json.display(),
        artifacts.csv.display(),
        artifacts.trajectory.display()
    );
    // A witness whose record is a panic, an engine error or an unsupported
    // cell is a harness bug, not an adversarial finding — fail the run.
    let broken: Vec<_> = report
        .outcomes
        .iter()
        .filter(|o| {
            ["panic", "engine error", "unsupported"]
                .iter()
                .any(|p| o.record.status.starts_with(p))
        })
        .collect();
    if broken.is_empty() {
        ExitCode::SUCCESS
    } else {
        for o in broken {
            eprintln!("BROKEN {}: {}", o.record.key, o.record.status);
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("campaign") {
        return run_campaign_cli(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("hunt") {
        return run_hunt_cli(&args[1..]);
    }
    let mut quick = false;
    let mut ids: Vec<String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--quick] [all | {}]\n       \
                     experiments campaign [--quick | --smoke] [--workers N] [--seed S] [--out DIR] \
                     [--cache-dir DIR | --no-cache]\n       \
                     experiments hunt [--quick | --smoke] [--workers N] [--seed S] [--budget B] \
                     [--no-fork] [--out DIR] [--cache-dir DIR | --no-cache]",
                    all_experiment_ids().join(" | ")
                );
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = all_experiment_ids().iter().map(|s| s.to_string()).collect();
    }
    let ctx = ExperimentCtx { quick };
    eprintln!(
        "# nochatter experiments ({} mode)",
        if quick { "quick" } else { "full" }
    );
    for id in &ids {
        let start = std::time::Instant::now();
        match run_experiment(id, ctx) {
            Some(table) => {
                print!("{}", table.to_markdown());
                eprintln!("[{id} finished in {:?}]", start.elapsed());
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
