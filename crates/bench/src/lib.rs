//! The experiment harness: regenerates every table and figure of the
//! reproduction (see `DESIGN.md` §5 for the experiment index and
//! `EXPERIMENTS.md` for recorded results).
//!
//! The paper is a theory paper — its "evaluation" is Theorems 3.1, 4.1 and
//! 5.1 plus complexity claims — so each experiment turns one theorem or
//! claim into a measurable table (`T*`), series (`F*`) or ablation (`A*`).
//! Run them all with:
//!
//! ```text
//! cargo run -p nochatter-bench --release --bin experiments -- all
//! ```
//!
//! Every scenario-sweep table (T1, F1, F2, T3, F3, T4, F4, T5, T6, DR1,
//! FR1) is
//! expressed as a [`nochatter_lab`] campaign: the sweep is a declarative
//! [`Matrix`] (or an explicit scenario list for the unknown-bound tables),
//! executed by the sharded deterministic campaign runner, and the table is
//! a post-processing pass over the collected [`RunRecord`]s. Three
//! experiments deliberately bypass the campaign runner because they probe
//! *internal* machinery rather than end-to-end scenarios: T2 drives the
//! `Communicate` subroutine with hand-built behaviors (Lemma 3.1's exact
//! duration), and A1/A2 ablate internals (truncated exploration sequences,
//! the clean-exploration shield) that no well-formed scenario can express.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::Arc;

use nochatter_core::unknown::{
    run_unknown_with_options, EstMode, SliceEnumeration, UnknownOptions,
};
use nochatter_core::{harness, BitStr, CommMode, KnownParams, KnownSetup};
use nochatter_explore::Uxs;
use nochatter_graph::generators::{self, Family};
use nochatter_graph::{InitialConfiguration, Label, NodeId};
use nochatter_lab::{
    mode_name, run_campaign, spread, wake_name, Campaign, Matrix, PayloadScheme, RunRecord,
    Scenario, ScenarioKey, ScenarioKind,
};
use nochatter_sim::WakeSchedule;

/// A rendered experiment: a titled markdown table plus free-form notes.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id and description.
    pub title: String,
    /// Column headers.
    pub columns: Vec<&'static str>,
    /// Row cells (stringified).
    pub rows: Vec<Vec<String>>,
    /// Summary lines printed below the table.
    pub notes: Vec<String>,
}

impl Table {
    fn new(title: impl Into<String>, columns: Vec<&'static str>) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders as github-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n{note}");
        }
        out
    }
}

/// Global knobs for a harness invocation.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentCtx {
    /// Shrinks sweeps for fast iteration (`--quick`).
    pub quick: bool,
}

fn label(v: u64) -> Label {
    Label::new(v).unwrap()
}

/// Runs a campaign on every available core (campaign results are
/// bit-identical for any worker count, so tables don't depend on this).
fn run(campaign: &Campaign) -> Vec<RunRecord> {
    run_campaign(campaign, 0).records
}

fn ok_cell(r: &RunRecord) -> (String, String) {
    if r.ok {
        ("yes".into(), r.rounds.to_string())
    } else {
        (format!("NO: {}", r.status), String::new())
    }
}

/// Least-squares slope of log(y) against log(x).
fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// T1 — Theorem 3.1 correctness sweep: families × sizes × team sizes ×
/// wake schedules; every cell must validate.
pub fn t1_correctness(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "T1 — GatherKnownUpperBound correctness sweep (Theorem 3.1)",
        vec!["family", "n", "k", "wake", "ok", "rounds", "moves"],
    );
    let sizes: Vec<u32> = if ctx.quick {
        vec![5, 8]
    } else {
        vec![4, 6, 8, 10, 12]
    };
    let teams: Vec<Vec<u64>> = if ctx.quick {
        vec![vec![2, 3], vec![3, 5, 9]]
    } else {
        vec![vec![2, 3], vec![3, 5, 9], vec![1, 4, 6, 7]]
    };
    let campaign = Matrix {
        families: Family::all().to_vec(),
        sizes,
        teams,
        schedules: vec![
            WakeSchedule::Simultaneous,
            WakeSchedule::FirstOnly,
            WakeSchedule::Staggered { gap: 7 },
        ],
        ..Matrix::new()
    }
    .campaign("t1", 17)
    .expect("t1 matrix is well-formed");
    let records = run(&campaign);
    let failures = records.iter().filter(|r| !r.ok).count();
    for r in &records {
        let (ok, rounds) = ok_cell(r);
        t.row(vec![
            r.key.family.clone(),
            r.n_actual.to_string(),
            r.key.team.len().to_string(),
            r.key.wake.clone(),
            ok,
            rounds,
            r.moves.to_string(),
        ]);
    }
    t.note(format!(
        "invariant violations: {failures} (expected 0) over {} runs",
        records.len()
    ));
    t
}

/// F1 — Theorem 3.1 complexity in `N`: rounds vs network size on rings and
/// random graphs, with the fitted log–log slope.
pub fn f1_rounds_vs_n(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "F1 — rounds vs N (Theorem 3.1: polynomial in N)",
        vec!["family", "n=N", "rounds", "moves"],
    );
    let sizes: Vec<u32> = if ctx.quick {
        vec![4, 6, 8, 10]
    } else {
        vec![4, 6, 8, 10, 12, 14, 16]
    };
    let campaign = Matrix {
        families: vec![Family::Ring, Family::RandomConnected],
        sizes,
        teams: vec![vec![2, 3]],
        ..Matrix::new()
    }
    .campaign("f1", 9)
    .expect("f1 matrix is well-formed");
    let records = run(&campaign);
    for family in ["rconn", "ring"] {
        let mut points = Vec::new();
        for r in records.iter().filter(|r| r.key.family == family) {
            assert!(r.ok, "F1 runs must validate: {} {}", r.key, r.status);
            points.push((f64::from(r.n_actual), r.rounds as f64));
            t.row(vec![
                r.key.family.clone(),
                r.n_actual.to_string(),
                r.rounds.to_string(),
                r.moves.to_string(),
            ]);
        }
        t.note(format!(
            "{}: fitted log-log slope {:.2} (a low-degree polynomial; the dominant \
             term is T(EXPLO(N)) times the phase count)",
            family,
            loglog_slope(&points)
        ));
    }
    t
}

/// F2 — Theorem 3.1 complexity in `ℓ`: rounds vs the bit length of the
/// smallest label at fixed N, expressed as a campaign whose *team* axis
/// sweeps label lengths.
pub fn f2_rounds_vs_label_len(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "F2 — rounds vs smallest-label bit length ℓ (Theorem 3.1: polynomial in ℓ)",
        vec!["ℓ", "labels", "rounds"],
    );
    let max_bits: u32 = if ctx.quick { 6 } else { 10 };
    let teams: Vec<Vec<u64>> = (1..=max_bits)
        .map(|bits| {
            let small = 1u64 << (bits - 1); // smallest label with `bits` bits
            vec![small, small + 1]
        })
        .collect();
    let campaign = Matrix {
        families: vec![Family::Ring],
        sizes: vec![6],
        teams: teams.clone(),
        ..Matrix::new()
    }
    .campaign("f2", 2)
    .expect("f2 matrix is well-formed");
    let records = run(&campaign);
    let mut points = Vec::new();
    for (bits, team) in (1..=max_bits).zip(&teams) {
        let r = records
            .iter()
            .find(|r| &r.key.team == team)
            .expect("every team ran");
        assert!(r.ok, "F2 runs must validate: {}", r.status);
        points.push((f64::from(bits), r.rounds as f64));
        t.row(vec![
            bits.to_string(),
            format!("{{{}, {}}}", team[0], team[1]),
            r.rounds.to_string(),
        ]);
    }
    // The quadratic signature: first differences grow linearly (constant
    // second differences), even while the log-log slope is still depressed
    // by the large additive constant.
    let rounds: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
    let second_diffs: Vec<f64> = rounds
        .windows(3)
        .map(|w| (w[2] - w[1]) - (w[1] - w[0]))
        .collect();
    let mean_dd = second_diffs.iter().sum::<f64>() / second_diffs.len().max(1) as f64;
    let max_dev = second_diffs
        .iter()
        .map(|d| (d - mean_dd).abs())
        .fold(0.0f64, f64::max);
    t.note(format!(
        "fitted log-log slope {:.2}; second differences of the rounds are \
         constant at {:.0} (max deviation {:.0}) — the quadratic-in-ℓ \
         signature of ≈2ℓ phases whose length grows linearly in the index",
        loglog_slope(&points),
        mean_dd,
        max_dev
    ));
    t
}

/// T2 — Lemma 3.1: `Communicate` transmits the lexicographically smallest
/// code with its exact multiplicity, in exactly `5·i·T(EXPLO(N))` rounds.
///
/// Deliberately not a campaign: it drives the `Communicate` subroutine in
/// isolation with hand-built behaviors to pin the lemma's *exact* duration,
/// which no end-to-end scenario exposes.
pub fn t2_communicate(_ctx: ExperimentCtx) -> Table {
    use nochatter_core::Communicate;
    use nochatter_sim::proc::Procedure;
    use nochatter_sim::{AgentAct, AgentBehavior, Declaration, Engine, Obs};

    let mut t = Table::new(
        "T2 — Communicate (Lemma 3.1): winner, multiplicity, exact duration",
        vec!["labels", "i", "winner", "k", "duration", "expected", "ok"],
    );

    struct Member {
        comm: Communicate,
        moved: bool,
        done: bool,
    }
    impl AgentBehavior for Member {
        fn on_round(&mut self, obs: &Obs) -> AgentAct {
            if self.done {
                return AgentAct::Wait;
            }
            if !self.moved {
                self.moved = true;
                return AgentAct::TakePort(nochatter_graph::Port::new(0));
            }
            match self.comm.poll(obs) {
                nochatter_sim::Poll::Yield(nochatter_sim::Action::Wait) => AgentAct::Wait,
                nochatter_sim::Poll::Yield(nochatter_sim::Action::TakePort(p)) => {
                    AgentAct::TakePort(p)
                }
                nochatter_sim::Poll::Complete(out) => {
                    self.done = true;
                    AgentAct::Declare(Declaration {
                        leader: out.l.extract_terminated_code().and_then(|d| d.to_label()),
                        size: Some(out.k),
                    })
                }
            }
        }
    }

    for labels in [vec![5u64, 3, 12], vec![4, 9], vec![7, 7 + 8, 23, 6]] {
        let i = labels
            .iter()
            .map(|&l| 2 * (64 - l.leading_zeros() as u64) + 2)
            .max()
            .unwrap() as u32;
        let g = generators::star(labels.len() as u32 + 1);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 7).unwrap());
        let t_explo = 2 * uxs.len() as u64;
        let mut engine = Engine::new(&g);
        for (idx, &l) in labels.iter().enumerate() {
            engine.add_agent(
                label(l),
                NodeId::new(idx as u32 + 1),
                Box::new(Member {
                    comm: Communicate::new(
                        i,
                        BitStr::from_label(label(l)).code(),
                        true,
                        Arc::clone(&uxs),
                    ),
                    moved: false,
                    done: false,
                }),
            );
        }
        let outcome = engine.run(100_000_000).unwrap();
        let expected_winner = labels
            .iter()
            .map(|&l| (BitStr::from_label(label(l)).code(), l))
            .min()
            .unwrap();
        let expected_k = labels
            .iter()
            .filter(|&&l| BitStr::from_label(label(l)).code() == expected_winner.0)
            .count() as u32;
        let rec = outcome.declarations[0].1.unwrap();
        let winner = rec.declaration.leader.map(|l| l.value()).unwrap_or(0);
        let k = rec.declaration.size.unwrap();
        let duration = rec.round - 1; // one approach move
        let expected_duration = 5 * u64::from(i) * t_explo;
        let ok = winner == expected_winner.1 && k == expected_k && duration == expected_duration;
        t.row(vec![
            format!("{labels:?}"),
            i.to_string(),
            winner.to_string(),
            k.to_string(),
            duration.to_string(),
            expected_duration.to_string(),
            if ok { "yes" } else { "NO" }.into(),
        ]);
    }
    t
}

fn tiny_cfg(kind: &str, labels: &[(u64, u32)]) -> InitialConfiguration {
    let graph = match kind {
        "path2" => generators::path(2),
        "ring3" => generators::ring(3),
        other => panic!("unknown tiny graph {other}"),
    };
    InitialConfiguration::new(
        graph,
        labels
            .iter()
            .map(|&(l, v)| (label(l), NodeId::new(v)))
            .collect(),
    )
    .unwrap()
}

/// Builds one explicit unknown-bound scenario: `truth` against an
/// enumeration of `decoys` followed by the truth itself.
fn unknown_scenario(
    name: &str,
    truth: InitialConfiguration,
    decoys: Vec<InitialConfiguration>,
) -> Scenario {
    let mode = CommMode::Silent;
    let schedule = WakeSchedule::Simultaneous;
    let kind = ScenarioKind::Unknown {
        decoys,
        est_mode: EstMode::Conservative,
    };
    // Key strings come from the lab helpers so explicit scenarios can never
    // desync from matrix-expanded ones.
    let key = ScenarioKey {
        family: name.to_string(),
        n: truth.size() as u32,
        team: truth.labels().map(Label::value).collect(),
        wake: wake_name(&schedule),
        topo: "static".into(),
        fault: "none".into(),
        mode: mode_name(mode).into(),
        variant: kind.variant_name(),
        rep: 0,
    };
    Scenario {
        key,
        cfg: truth,
        mode,
        schedule,
        topo: nochatter_sim::TopologySpec::Static,
        fault: nochatter_sim::FaultSpec::None,
        kind,
        seed: 0, // overwritten by Campaign::from_scenarios
    }
}

/// T3 — Theorem 4.1: gathering + leader election + exact size learning with
/// no prior knowledge, across truth positions in the enumeration.
pub fn t3_unknown(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "T3 — GatherUnknownUpperBound correctness (Theorem 4.1)",
        vec![
            "truth",
            "h*",
            "ok",
            "size",
            "leader",
            "rounds",
            "engine iters",
        ],
    );
    let truth2 = tiny_cfg("path2", &[(1, 0), (2, 1)]);
    let truth3 = tiny_cfg("ring3", &[(1, 0), (2, 1)]);
    let decoy = tiny_cfg("path2", &[(3, 0), (4, 1)]);
    let mut scenarios = vec![
        unknown_scenario("path2", truth2.clone(), vec![]),
        unknown_scenario("ring3", truth3.clone(), vec![]),
        unknown_scenario("ring3", truth3.clone(), vec![decoy.clone()]),
    ];
    if !ctx.quick {
        scenarios.push(unknown_scenario(
            "ring3",
            truth3.clone(),
            vec![decoy.clone(), tiny_cfg("path2", &[(5, 0), (6, 1)])],
        ));
    }
    let campaign =
        Campaign::from_scenarios("t3", 0, scenarios).expect("t3 scenarios are well-formed");
    let mut records = run(&campaign);
    // Present in enumeration-depth order (key order sorts path2 first).
    records.sort_by_key(|r| (r.key.family.clone(), r.key.variant.clone()));
    for r in &records {
        let h_star = r.key.variant.trim_start_matches("unknown@").to_string();
        let (ok, _) = ok_cell(r);
        t.row(vec![
            format!("{}@{h_star}", r.key.family),
            h_star,
            ok,
            r.size.map(|s| s.to_string()).unwrap_or_default(),
            r.leader.map(|l| l.to_string()).unwrap_or_default(),
            r.rounds.to_string(),
            r.engine_iterations.to_string(),
        ]);
    }
    t.note("size must equal the true network size; leader must be the true smallest label.");
    t
}

/// F3 — §4 feasibility-only: round blow-up as the truth moves deeper into
/// the enumeration.
pub fn f3_unknown_growth(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "F3 — unknown-bound rounds vs hypothesis index (exponential by design)",
        vec!["h*", "rounds", "engine iters", "skipped (fast-forwarded)"],
    );
    let truth = tiny_cfg("ring3", &[(1, 0), (2, 1)]);
    let decoys = [
        tiny_cfg("path2", &[(1, 0), (2, 1)]),
        tiny_cfg("path2", &[(3, 0), (4, 1)]),
    ];
    let depth = if ctx.quick { 2 } else { 3 };
    let scenarios: Vec<Scenario> = (1..=depth)
        .map(|h_star| {
            unknown_scenario(
                "ring3",
                truth.clone(),
                decoys.iter().take(h_star - 1).cloned().collect(),
            )
        })
        .collect();
    let campaign =
        Campaign::from_scenarios("f3", 0, scenarios).expect("f3 scenarios are well-formed");
    let mut records = run(&campaign);
    records.sort_by_key(|r| r.key.variant.clone());
    for r in &records {
        assert!(r.ok, "F3 runs must validate: {}", r.status);
        t.row(vec![
            r.key.variant.trim_start_matches("unknown@").to_string(),
            r.rounds.to_string(),
            r.engine_iterations.to_string(),
            r.skipped_rounds.to_string(),
        ]);
    }
    t.note(
        "each extra wrong hypothesis multiplies the round count (the nested \
         S_h/T_h budgets compound) — the paper's 'feasibility only' caveat, measured.",
    );
    t
}

/// T4 — Theorem 5.1 correctness: every agent learns the exact multiset of
/// messages (the campaign runner verifies each agent's decoded multiset).
pub fn t4_gossip(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "T4 — Gossip correctness (Theorem 5.1)",
        vec!["k", "payload lengths", "ok", "rounds"],
    );
    let teams: Vec<Vec<u64>> = if ctx.quick {
        vec![vec![3, 4], vec![2, 5, 9]]
    } else {
        vec![vec![3, 4], vec![2, 5, 9], vec![1, 6, 11, 14]]
    };
    let campaign = Matrix {
        families: vec![Family::Ring],
        sizes: vec![5],
        teams,
        kinds: vec![ScenarioKind::Gossip(PayloadScheme::Ramp)],
        ..Matrix::new()
    }
    .campaign("t4", 3)
    .expect("t4 matrix is well-formed");
    let mut records = run(&campaign);
    records.sort_by_key(|r| r.key.team.len());
    for r in &records {
        t.row(vec![
            r.key.team.len().to_string(),
            format!("{:?}", (0..r.key.team.len()).collect::<Vec<_>>()),
            if r.ok { "yes" } else { "NO" }.into(),
            r.rounds.to_string(),
        ]);
    }
    t
}

/// F4 — Theorem 5.1 complexity: rounds vs the largest message length. The
/// campaign's variant axis sweeps `Gather` (the baseline isolating the
/// gossip term) plus uniform payload lengths.
pub fn f4_gossip_vs_len(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "F4 — gossip rounds vs max message length (Theorem 5.1: polynomial)",
        vec!["|M|", "total rounds", "gossip rounds (excl. gathering)"],
    );
    let lens: &[usize] = if ctx.quick {
        &[1, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 24]
    };
    let mut kinds = vec![ScenarioKind::Gather];
    kinds.extend(
        lens.iter()
            .map(|&len| ScenarioKind::Gossip(PayloadScheme::Uniform { len })),
    );
    let campaign = Matrix {
        families: vec![Family::Path],
        sizes: vec![3],
        teams: vec![vec![2, 3]],
        kinds,
        ..Matrix::new()
    }
    .campaign("f4", 3)
    .expect("f4 matrix is well-formed");
    let records = run(&campaign);
    let gather_only = records
        .iter()
        .find(|r| r.key.variant == "gather")
        .expect("baseline ran");
    assert!(
        gather_only.ok,
        "baseline must gather: {}",
        gather_only.status
    );
    for &len in lens {
        let variant = format!("gossip-u{len}");
        let r = records
            .iter()
            .find(|r| r.key.variant == variant)
            .expect("every length ran");
        assert!(r.ok, "F4 runs must validate: {}", r.status);
        // The baseline shares the gossip runs' instance seed (the variant
        // axis is outside the instance sub-key), so gathering takes the
        // same rounds in both and the difference is exactly the gossip
        // term; a failed subtraction means that sharing broke.
        let gossip_term = r
            .rounds
            .checked_sub(gather_only.rounds)
            .expect("gossip runs cannot finish before their own gathering baseline");
        t.row(vec![
            len.to_string(),
            r.rounds.to_string(),
            gossip_term.to_string(),
        ]);
    }
    t.note(format!(
        "gathering-only baseline: {} rounds; the gossip term grows \
         quadratically in |M| (length budget climbs 2,4,...,2|M|+2 with cost 5jT each).",
        gather_only.rounds
    ));
    t
}

/// T5 — the price of silence: identical instances under the weak model vs.
/// the traditional talking model (the campaign's mode axis).
pub fn t5_price_of_silence(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "T5 — price of silence: weak model vs traditional model",
        vec!["family", "n", "k", "silent", "talking", "ratio"],
    );
    let sizes: Vec<u32> = if ctx.quick { vec![6] } else { vec![6, 9, 12] };
    let campaign = Matrix {
        families: vec![Family::Ring, Family::Grid, Family::Star],
        sizes,
        teams: vec![vec![3, 5, 9]],
        modes: vec![CommMode::Silent, CommMode::Talking],
        ..Matrix::new()
    }
    .campaign("t5", 5)
    .expect("t5 matrix is well-formed");
    let report = run_campaign(&campaign, 0);
    let mut ratios = Vec::new();
    for (silent, talking) in report.mode_pairs("silent", "talking") {
        assert!(silent.ok && talking.ok, "T5 runs must validate");
        let ratio = silent.rounds as f64 / talking.rounds as f64;
        ratios.push(ratio);
        t.row(vec![
            silent.key.family.clone(),
            silent.n_actual.to_string(),
            silent.key.team.len().to_string(),
            silent.rounds.to_string(),
            talking.rounds.to_string(),
            format!("{ratio:.3}"),
        ]);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    t.note(format!(
        "mean ratio {mean:.3}: silence costs the 5i·T Communicate term per phase — \
         a constant factor here, polynomial overhead in general (Theorem 3.1)."
    ));
    t
}

/// T6 — agreement invariants over a randomized batch: the campaign's seed
/// repetitions sweep fresh random graphs under staggered wake-ups, and
/// every record must pass the full gathering validation (same round, same
/// node, same leader, leader in team).
pub fn t6_agreement(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "T6 — agreement invariants over randomized instances",
        vec!["runs", "gathered", "invariant violations", "engine errors"],
    );
    let campaign = Matrix {
        families: vec![Family::RandomConnected, Family::RandomTree],
        sizes: if ctx.quick {
            vec![5, 7]
        } else {
            vec![5, 6, 7, 8]
        },
        teams: vec![vec![2, 5, 8], vec![3, 4]],
        schedules: vec![
            WakeSchedule::Staggered { gap: 1 },
            WakeSchedule::Staggered { gap: 5 },
            WakeSchedule::Staggered { gap: 13 },
        ],
        reps: if ctx.quick { 1 } else { 2 },
        shuffled_ports: true,
        ..Matrix::new()
    }
    .campaign("t6", 6)
    .expect("t6 matrix is well-formed");
    let records = run(&campaign);
    let gathered = records.iter().filter(|r| r.ok).count();
    let engine_errors = records
        .iter()
        .filter(|r| r.status.starts_with("engine error"))
        .count();
    let violations = records.len() - gathered - engine_errors;
    t.row(vec![
        records.len().to_string(),
        format!("{gathered}/{}", records.len()),
        violations.to_string(),
        engine_errors.to_string(),
    ]);
    for r in records.iter().filter(|r| !r.ok) {
        t.note(format!("violation at {}: {}", r.key, r.status));
    }
    t
}

/// A1 — ablation: truncating the certified exploration sequence breaks the
/// wake-up and rendezvous guarantees, and gathering fails.
///
/// Deliberately not a campaign: it injects *uncertified* exploration
/// sequences, which no well-formed scenario specification can express.
pub fn a1_uxs_ablation(_ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "A1 — ablation: uncertified (truncated) exploration sequences",
        vec!["fraction", "covers all starts", "gathering"],
    );
    let g = generators::ring(8);
    let cfg = spread(g.clone(), &[2, 3]).expect("valid ablation configuration");
    let full = Uxs::covering(std::slice::from_ref(&g), 11).unwrap();
    for percent in [100usize, 60, 30, 10] {
        let truncated = full.truncated((full.len() * percent / 100).max(1));
        let covers = g.nodes().all(|s| truncated.covers(&g, s));
        let params = KnownParams::new(8, Arc::new(truncated));
        let setup = KnownSetup::from_params(params);
        let result = harness::run_known(&cfg, &setup, CommMode::Silent, WakeSchedule::FirstOnly);
        let verdict = match result {
            Ok(outcome) => match outcome.gathering() {
                Ok(_) => "correct".to_string(),
                Err(e) => format!("FAILS: {e}"),
            },
            Err(e) => format!("engine error: {e}"),
        };
        t.row(vec![format!("{percent}%"), covers.to_string(), verdict]);
    }
    t.note(
        "the certified sequence is load-bearing: with partial coverage the phase-0 \
         exploration no longer wakes everyone and EXPLO-based meetings are lost.",
    );
    t
}

/// A2 — ablation: removing the `EnsureCleanExploration` shield lets a
/// corrupted `EST` reconstruction declare gathering unsoundly (why
/// Algorithm 10 and Lemma 4.10 exist).
///
/// Deliberately not a campaign: it toggles internal options
/// (`disable_clean_exploration`, adversarial `EST`) that the scenario
/// specification intentionally cannot reach.
pub fn a2_est_ablation(_ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "A2 — ablation: the clean-exploration shield (Algorithm 10)",
        vec!["shield", "EST mode", "outcome"],
    );
    // Real world: a 4-path with a third agent (label 9 ∉ φ_1) parked two
    // hops from the hypothesized central node — outside StarCheck's radius
    // but inside EST+'s walk.
    let truth = InitialConfiguration::new(
        generators::path(4),
        vec![
            (label(1), NodeId::new(0)),
            (label(2), NodeId::new(1)),
            (label(9), NodeId::new(2)),
        ],
    )
    .unwrap();
    let hypo = InitialConfiguration::new(
        generators::path(3),
        vec![(label(1), NodeId::new(0)), (label(2), NodeId::new(1))],
    )
    .unwrap();
    for (shield, mode) in [
        (true, EstMode::Adversarial),
        (false, EstMode::Conservative),
        (false, EstMode::Adversarial),
    ] {
        let (outcome, reports) = run_unknown_with_options(
            &truth,
            SliceEnumeration::new(vec![hypo.clone()]),
            UnknownOptions {
                est_mode: mode,
                disable_clean_exploration: !shield,
            },
            WakeSchedule::Simultaneous,
        )
        .expect("run completes");
        let outcome_str = match outcome.gathering() {
            Ok(r) => format!(
                "UNSOUND: declared size {} on a {}-node network",
                r.size.unwrap(),
                truth.size()
            ),
            Err(_) if outcome.declarations.iter().any(|(_, r)| r.is_some()) => {
                "UNSOUND: partial declaration".into()
            }
            Err(_) => {
                let dirty = reports
                    .iter()
                    .filter_map(|(_, r)| *r)
                    .any(|r| r.est_dirty_observed);
                format!(
                    "safe (hypothesis rejected{})",
                    if dirty { ", dirty EST seen" } else { "" }
                )
            }
        };
        t.row(vec![
            if shield { "on" } else { "OFF" }.into(),
            format!("{mode:?}"),
            outcome_str,
        ]);
    }
    t.note(
        "with the shield on, even an adversarial EST is never exercised (Lemma 4.10); \
         removing the shield lets a dirty exploration accept a wrong hypothesis.",
    );
    t
}

/// DR1 — gathering on 1-interval-connected dynamic rings (à la *Gathering
/// in Dynamic Rings*, Di Luna et al.): the `dr1` preset campaign pits the
/// algorithm against an adversary that removes one seeded ring edge per
/// round, with each dynamic cell's static twin (same derived seed, same
/// base ring) as the control column.
pub fn dr1_dynamic_ring(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "DR1 — dynamic ring: one adversarial edge removal per round (1-interval connectivity)",
        vec!["n", "k", "wake", "mode", "topo", "ok", "rounds", "blocked"],
    );
    let report = run_campaign(&nochatter_lab::presets::dr1_campaign(ctx.quick), 0);
    for r in &report.records {
        let (ok, rounds) = ok_cell(r);
        t.row(vec![
            r.n_actual.to_string(),
            r.key.team.len().to_string(),
            r.key.wake.clone(),
            r.key.mode.clone(),
            r.key.topo.clone(),
            ok,
            rounds,
            r.blocked_moves.to_string(),
        ]);
    }
    let dynamic: Vec<_> = report
        .records
        .iter()
        .filter(|r| r.key.topo != "static")
        .collect();
    let survived = dynamic.iter().filter(|r| r.ok).count();
    let blocked: u64 = dynamic.iter().map(|r| r.blocked_moves).sum();
    t.note(format!(
        "static control: {}/{} ok; dynamic ring: {survived}/{} ok with {blocked} blocked \
         moves total. The talking baseline survives every cell (label sensing makes \
         meeting detection timing-independent); the silent algorithm — EXPLO retries \
         blocked traversals — survives a substantial subset, and where it fails the \
         record names the violated requirement.",
        report
            .records
            .iter()
            .filter(|r| r.key.topo == "static" && r.ok)
            .count(),
        report.records.len() - dynamic.len(),
        dynamic.len(),
    ));
    t
}

/// FR1 — gathering under crash faults: the `fr1` preset campaign crashes
/// `f ∈ {0, 1, 2}` agents mid-run (the crashed body keeps counting toward
/// `CurCard` — the paper's sensing model makes that the honest semantics)
/// and asks where the silent algorithm still achieves *surviving*
/// gathering, with the talking baseline and each cell's fault-free twin
/// (same derived seed, same base ring) as the controls.
pub fn fr1_crash_faults(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "FR1 — crash faults: f agent crashes vs silent gathering and the talking baseline",
        vec!["n", "k", "wake", "mode", "fault", "ok", "rounds", "crashed"],
    );
    let report = run_campaign(&nochatter_lab::presets::fr1_campaign(ctx.quick), 0);
    for r in &report.records {
        let (ok, rounds) = ok_cell(r);
        t.row(vec![
            r.n_actual.to_string(),
            r.key.team.len().to_string(),
            r.key.wake.clone(),
            r.key.mode.clone(),
            r.key.fault.clone(),
            ok,
            rounds,
            r.crashed_agents.to_string(),
        ]);
    }
    let faulty: Vec<_> = report
        .records
        .iter()
        .filter(|r| r.key.fault != "none")
        .collect();
    let survived = |mode: &str| {
        let cells: Vec<_> = faulty.iter().filter(|r| r.key.mode == mode).collect();
        format!("{}/{}", cells.iter().filter(|r| r.ok).count(), cells.len())
    };
    let total_crashed: u64 = faulty.iter().map(|r| u64::from(r.crashed_agents)).sum();
    t.note(format!(
        "fault-free control: {}/{} ok; under crashes the silent algorithm achieves \
         surviving gathering on {} cells and the talking baseline on {} (identical \
         instances — each faulty cell shares its seed with its fault-free twin), \
         {total_crashed} agents crashed in total. Where a cell fails, the record names \
         the violated requirement (a validation error, never a harness crash): a crashed \
         body is indistinguishable from a waiting agent under weak sensing, so survivors \
         can wait forever for a CurCard that will never move.",
        report
            .records
            .iter()
            .filter(|r| r.key.fault == "none" && r.ok)
            .count(),
        report.records.len() - faulty.len(),
        survived("silent"),
        survived("talking"),
    ));
    t
}

/// Runs an experiment by id; `None` for an unknown id.
pub fn run_experiment(id: &str, ctx: ExperimentCtx) -> Option<Table> {
    Some(match id {
        "t1" => t1_correctness(ctx),
        "f1" => f1_rounds_vs_n(ctx),
        "f2" => f2_rounds_vs_label_len(ctx),
        "t2" => t2_communicate(ctx),
        "t3" => t3_unknown(ctx),
        "f3" => f3_unknown_growth(ctx),
        "t4" => t4_gossip(ctx),
        "f4" => f4_gossip_vs_len(ctx),
        "t5" => t5_price_of_silence(ctx),
        "t6" => t6_agreement(ctx),
        "dr1" => dr1_dynamic_ring(ctx),
        "fr1" => fr1_crash_faults(ctx),
        "a1" => a1_uxs_ablation(ctx),
        "a2" => a2_est_ablation(ctx),
        _ => return None,
    })
}

/// All experiment ids, in presentation order.
pub fn all_experiment_ids() -> &'static [&'static str] {
    &[
        "t1", "f1", "f2", "t2", "t3", "f3", "t4", "f4", "t5", "t6", "dr1", "fr1", "a1", "a2",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentCtx {
        ExperimentCtx { quick: true }
    }

    #[test]
    fn t1_has_no_failures() {
        let t = t1_correctness(quick());
        assert!(t.notes[0].contains("violations: 0"));
    }

    #[test]
    fn t2_all_rows_ok() {
        let t = t2_communicate(quick());
        assert!(t.rows.iter().all(|r| r.last().unwrap() == "yes"));
    }

    #[test]
    fn t3_learns_exact_sizes() {
        let t = t3_unknown(quick());
        for row in &t.rows {
            assert_eq!(row[2], "yes", "{row:?}");
            let truth = &row[0];
            let expected = if truth.starts_with("path2") { "2" } else { "3" };
            assert_eq!(row[3], expected, "{row:?}");
        }
    }

    #[test]
    fn t4_all_rows_ok() {
        let t = t4_gossip(quick());
        assert!(!t.rows.is_empty());
        assert!(t.rows.iter().all(|r| r[2] == "yes"), "{:?}", t.rows);
    }

    #[test]
    fn t5_silence_never_speeds_up() {
        let t = t5_price_of_silence(quick());
        for row in &t.rows {
            let silent: u64 = row[3].parse().unwrap();
            let talking: u64 = row[4].parse().unwrap();
            assert!(silent >= talking, "{row:?}");
        }
    }

    #[test]
    fn t6_all_invariants_hold() {
        let t = t6_agreement(quick());
        let row = &t.rows[0];
        let (num, den) = row[1].split_once('/').unwrap();
        assert_eq!(num, den, "not all runs gathered: {row:?}");
        assert_eq!(row[2], "0", "invariant violations: {:?}", t.notes);
        assert_eq!(row[3], "0", "engine errors: {:?}", t.notes);
    }

    #[test]
    fn dr1_controls_hold_and_dynamics_are_exercised() {
        let t = dr1_dynamic_ring(quick());
        // Static control rows all gather with zero blocked moves.
        for row in t.rows.iter().filter(|r| r[4] == "static") {
            assert_eq!(row[5], "yes", "{row:?}");
            assert_eq!(row[7], "0", "{row:?}");
        }
        // Dynamic rows exist, all paid blocked moves, talking all gather.
        let dynamic: Vec<_> = t.rows.iter().filter(|r| r[4] != "static").collect();
        assert!(!dynamic.is_empty());
        for row in &dynamic {
            assert_ne!(row[7], "0", "{row:?}");
            if row[3] == "talking" {
                assert_eq!(row[5], "yes", "{row:?}");
            }
        }
        assert!(
            dynamic.iter().any(|r| r[3] == "silent" && r[5] == "yes"),
            "some silent cell must survive the adversary"
        );
    }

    #[test]
    fn fr1_controls_hold_and_crashes_are_differential() {
        let t = fr1_crash_faults(quick());
        // Fault-free control rows all gather with zero crashes.
        for row in t.rows.iter().filter(|r| r[4] == "none") {
            assert_eq!(row[5], "yes", "{row:?}");
            assert_eq!(row[7], "0", "{row:?}");
        }
        // Faulty rows exist, each records its exact crash count, the
        // talking baseline survives every one, and silent failures are
        // validation errors (never engine errors or harness crashes).
        let faulty: Vec<_> = t.rows.iter().filter(|r| r[4] != "none").collect();
        assert!(!faulty.is_empty());
        for row in &faulty {
            let expected_crashes = 1 + row[4].matches('+').count();
            assert_eq!(row[7], expected_crashes.to_string(), "{row:?}");
            if row[3] == "talking" {
                assert_eq!(row[5], "yes", "{row:?}");
            } else {
                assert!(row[5].starts_with("NO:"), "{row:?}");
                assert!(!row[5].contains("engine error"), "{row:?}");
            }
        }
    }

    #[test]
    fn a1_truncation_breaks_gathering() {
        let t = a1_uxs_ablation(quick());
        assert!(t.rows[0][2].contains("correct"), "{:?}", t.rows[0]);
        assert!(
            t.rows
                .iter()
                .any(|r| r[2].contains("FAILS") || r[2].contains("error")),
            "some truncation must break gathering: {:?}",
            t.rows
        );
    }

    #[test]
    fn a2_shield_is_load_bearing() {
        let t = a2_est_ablation(quick());
        // Shield on: safe.
        assert!(t.rows[0][2].contains("safe"), "{:?}", t.rows[0]);
        // Shield off with adversarial EST: unsound.
        assert!(
            t.rows[2][2].contains("UNSOUND"),
            "removing the shield must be demonstrably unsound: {:?}",
            t.rows[2]
        );
    }

    #[test]
    fn unknown_ids_are_rejected() {
        assert!(run_experiment("zz", quick()).is_none());
    }

    #[test]
    fn markdown_renders() {
        let t = t6_agreement(quick());
        let md = t.to_markdown();
        assert!(md.contains("### T6"));
        assert!(md.contains("|---|"));
    }
}
