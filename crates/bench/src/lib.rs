//! The experiment harness: regenerates every table and figure of the
//! reproduction (see `DESIGN.md` §5 for the experiment index and
//! `EXPERIMENTS.md` for recorded results).
//!
//! The paper is a theory paper — its "evaluation" is Theorems 3.1, 4.1 and
//! 5.1 plus complexity claims — so each experiment turns one theorem or
//! claim into a measurable table (`T*`), series (`F*`) or ablation (`A*`).
//! Run them all with:
//!
//! ```text
//! cargo run -p nochatter-bench --release --bin experiments -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::Arc;

use nochatter_core::unknown::{
    run_unknown, run_unknown_with_options, EstMode, SliceEnumeration, UnknownOptions,
};
use nochatter_core::{harness, BitStr, CommMode, KnownParams, KnownSetup};
use nochatter_explore::Uxs;
use nochatter_graph::generators::{self, Family};
use nochatter_graph::{Graph, InitialConfiguration, Label, NodeId};
use nochatter_sim::{RunOutcome, WakeSchedule};

/// A rendered experiment: a titled markdown table plus free-form notes.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id and description.
    pub title: String,
    /// Column headers.
    pub columns: Vec<&'static str>,
    /// Row cells (stringified).
    pub rows: Vec<Vec<String>>,
    /// Summary lines printed below the table.
    pub notes: Vec<String>,
}

impl Table {
    fn new(title: impl Into<String>, columns: Vec<&'static str>) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders as github-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n{note}");
        }
        out
    }
}

/// Global knobs for a harness invocation.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentCtx {
    /// Shrinks sweeps for fast iteration (`--quick`).
    pub quick: bool,
}

fn label(v: u64) -> Label {
    Label::new(v).unwrap()
}

/// Spreads `k` agents with the given labels evenly over the graph.
fn spread(graph: Graph, labels: &[u64]) -> InitialConfiguration {
    let n = graph.node_count();
    let agents = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| (label(l), NodeId::new((i * n / labels.len()) as u32)))
        .collect();
    InitialConfiguration::new(graph, agents).unwrap()
}

fn run_silent(cfg: &InitialConfiguration, schedule: WakeSchedule, seed: u64) -> RunOutcome {
    let setup = KnownSetup::for_configuration(cfg, cfg.size() as u32, seed);
    harness::run_known(cfg, &setup, CommMode::Silent, schedule).expect("engine runs")
}

fn validity(outcome: &RunOutcome, cfg: &InitialConfiguration) -> Result<u64, String> {
    match outcome.gathering() {
        Ok(report) => {
            let leader = report.leader.ok_or("no leader")?;
            if !cfg.contains_label(leader) {
                return Err(format!("phantom leader {leader}"));
            }
            Ok(report.round)
        }
        Err(e) => Err(e.to_string()),
    }
}

/// T1 — Theorem 3.1 correctness sweep: families × sizes × team sizes ×
/// wake schedules; every cell must validate.
pub fn t1_correctness(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "T1 — GatherKnownUpperBound correctness sweep (Theorem 3.1)",
        vec!["family", "n", "k", "wake", "ok", "rounds", "moves"],
    );
    let sizes: &[u32] = if ctx.quick {
        &[5, 8]
    } else {
        &[4, 6, 8, 10, 12]
    };
    let teams: &[&[u64]] = if ctx.quick {
        &[&[2, 3], &[3, 5, 9]]
    } else {
        &[&[2, 3], &[3, 5, 9], &[1, 4, 6, 7]]
    };
    let schedules = [
        ("simul", WakeSchedule::Simultaneous),
        ("first", WakeSchedule::FirstOnly),
        ("stag7", WakeSchedule::Staggered { gap: 7 }),
    ];
    let mut failures = 0u32;
    for &family in Family::all() {
        for &n in sizes {
            for labels in teams {
                if labels.len() > n as usize {
                    continue;
                }
                for (wname, schedule) in &schedules {
                    let cfg = spread(family.instantiate(n, 17), labels);
                    let outcome = run_silent(&cfg, schedule.clone(), 5);
                    let verdict = validity(&outcome, &cfg);
                    failures += u32::from(verdict.is_err());
                    let (ok_cell, round_cell) = match &verdict {
                        Ok(r) => ("yes".to_string(), r.to_string()),
                        Err(e) => (format!("NO: {e}"), String::new()),
                    };
                    t.row(vec![
                        family.name().into(),
                        cfg.size().to_string(),
                        labels.len().to_string(),
                        (*wname).into(),
                        ok_cell,
                        round_cell,
                        outcome.total_moves.to_string(),
                    ]);
                }
            }
        }
    }
    t.note(format!(
        "invariant violations: {failures} (expected 0) over {} runs",
        t.rows.len()
    ));
    t
}

/// Least-squares slope of log(y) against log(x).
fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// F1 — Theorem 3.1 complexity in `N`: rounds vs network size on rings and
/// random graphs, with the fitted log–log slope.
pub fn f1_rounds_vs_n(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "F1 — rounds vs N (Theorem 3.1: polynomial in N)",
        vec!["family", "n=N", "rounds", "moves"],
    );
    let sizes: Vec<u32> = if ctx.quick {
        vec![4, 6, 8, 10]
    } else {
        vec![4, 6, 8, 10, 12, 14, 16]
    };
    for family in [Family::Ring, Family::RandomConnected] {
        let mut points = Vec::new();
        for &n in &sizes {
            let cfg = spread(family.instantiate(n, 3), &[2, 3]);
            let outcome = run_silent(&cfg, WakeSchedule::Simultaneous, 9);
            let round = validity(&outcome, &cfg).expect("F1 runs must validate");
            points.push((f64::from(n), round as f64));
            t.row(vec![
                family.name().into(),
                n.to_string(),
                round.to_string(),
                outcome.total_moves.to_string(),
            ]);
        }
        t.note(format!(
            "{}: fitted log-log slope {:.2} (a low-degree polynomial; the dominant \
             term is T(EXPLO(N)) times the phase count)",
            family.name(),
            loglog_slope(&points)
        ));
    }
    t
}

/// F2 — Theorem 3.1 complexity in `ℓ`: rounds vs the bit length of the
/// smallest label at fixed N.
pub fn f2_rounds_vs_label_len(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "F2 — rounds vs smallest-label bit length ℓ (Theorem 3.1: polynomial in ℓ)",
        vec!["ℓ", "labels", "rounds"],
    );
    let max_bits = if ctx.quick { 6 } else { 10 };
    let mut points = Vec::new();
    for bits in 1..=max_bits {
        let small = 1u64 << (bits - 1); // smallest label with `bits` bits
        let labels = [small, small + 1];
        let cfg = spread(generators::ring(6), &labels);
        let outcome = run_silent(&cfg, WakeSchedule::Simultaneous, 2);
        let round = validity(&outcome, &cfg).expect("F2 runs must validate");
        points.push((f64::from(bits), round as f64));
        t.row(vec![
            bits.to_string(),
            format!("{{{}, {}}}", labels[0], labels[1]),
            round.to_string(),
        ]);
    }
    // The quadratic signature: first differences grow linearly (constant
    // second differences), even while the log-log slope is still depressed
    // by the large additive constant.
    let rounds: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
    let second_diffs: Vec<f64> = rounds
        .windows(3)
        .map(|w| (w[2] - w[1]) - (w[1] - w[0]))
        .collect();
    let mean_dd = second_diffs.iter().sum::<f64>() / second_diffs.len().max(1) as f64;
    let max_dev = second_diffs
        .iter()
        .map(|d| (d - mean_dd).abs())
        .fold(0.0f64, f64::max);
    t.note(format!(
        "fitted log-log slope {:.2}; second differences of the rounds are \
         constant at {:.0} (max deviation {:.0}) — the quadratic-in-ℓ \
         signature of ≈2ℓ phases whose length grows linearly in the index",
        loglog_slope(&points),
        mean_dd,
        max_dev
    ));
    t
}

/// T2 — Lemma 3.1: `Communicate` transmits the lexicographically smallest
/// code with its exact multiplicity, in exactly `5·i·T(EXPLO(N))` rounds.
pub fn t2_communicate(_ctx: ExperimentCtx) -> Table {
    use nochatter_core::Communicate;
    use nochatter_sim::proc::Procedure;
    use nochatter_sim::{AgentAct, AgentBehavior, Declaration, Engine, Obs};

    let mut t = Table::new(
        "T2 — Communicate (Lemma 3.1): winner, multiplicity, exact duration",
        vec!["labels", "i", "winner", "k", "duration", "expected", "ok"],
    );

    struct Member {
        comm: Communicate,
        moved: bool,
        done: bool,
    }
    impl AgentBehavior for Member {
        fn on_round(&mut self, obs: &Obs) -> AgentAct {
            if self.done {
                return AgentAct::Wait;
            }
            if !self.moved {
                self.moved = true;
                return AgentAct::TakePort(nochatter_graph::Port::new(0));
            }
            match self.comm.poll(obs) {
                nochatter_sim::Poll::Yield(nochatter_sim::Action::Wait) => AgentAct::Wait,
                nochatter_sim::Poll::Yield(nochatter_sim::Action::TakePort(p)) => {
                    AgentAct::TakePort(p)
                }
                nochatter_sim::Poll::Complete(out) => {
                    self.done = true;
                    AgentAct::Declare(Declaration {
                        leader: out.l.extract_terminated_code().and_then(|d| d.to_label()),
                        size: Some(out.k),
                    })
                }
            }
        }
    }

    for labels in [vec![5u64, 3, 12], vec![4, 9], vec![7, 7 + 8, 23, 6]] {
        let i = labels
            .iter()
            .map(|&l| 2 * (64 - l.leading_zeros() as u64) + 2)
            .max()
            .unwrap() as u32;
        let g = generators::star(labels.len() as u32 + 1);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 7).unwrap());
        let t_explo = 2 * uxs.len() as u64;
        let mut engine = Engine::new(&g);
        for (idx, &l) in labels.iter().enumerate() {
            engine.add_agent(
                label(l),
                NodeId::new(idx as u32 + 1),
                Box::new(Member {
                    comm: Communicate::new(
                        i,
                        BitStr::from_label(label(l)).code(),
                        true,
                        Arc::clone(&uxs),
                    ),
                    moved: false,
                    done: false,
                }),
            );
        }
        let outcome = engine.run(100_000_000).unwrap();
        let expected_winner = labels
            .iter()
            .map(|&l| (BitStr::from_label(label(l)).code(), l))
            .min()
            .unwrap();
        let expected_k = labels
            .iter()
            .filter(|&&l| BitStr::from_label(label(l)).code() == expected_winner.0)
            .count() as u32;
        let rec = outcome.declarations[0].1.unwrap();
        let winner = rec.declaration.leader.map(|l| l.value()).unwrap_or(0);
        let k = rec.declaration.size.unwrap();
        let duration = rec.round - 1; // one approach move
        let expected_duration = 5 * u64::from(i) * t_explo;
        let ok = winner == expected_winner.1 && k == expected_k && duration == expected_duration;
        t.row(vec![
            format!("{labels:?}"),
            i.to_string(),
            winner.to_string(),
            k.to_string(),
            duration.to_string(),
            expected_duration.to_string(),
            if ok { "yes" } else { "NO" }.into(),
        ]);
    }
    t
}

fn tiny_cfg(kind: &str, labels: &[(u64, u32)]) -> InitialConfiguration {
    let graph = match kind {
        "path2" => generators::path(2),
        "ring3" => generators::ring(3),
        other => panic!("unknown tiny graph {other}"),
    };
    InitialConfiguration::new(
        graph,
        labels
            .iter()
            .map(|&(l, v)| (label(l), NodeId::new(v)))
            .collect(),
    )
    .unwrap()
}

/// T3 — Theorem 4.1: gathering + leader election + exact size learning with
/// no prior knowledge, across truth positions in the enumeration.
pub fn t3_unknown(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "T3 — GatherUnknownUpperBound correctness (Theorem 4.1)",
        vec![
            "truth",
            "h*",
            "ok",
            "size",
            "leader",
            "rounds",
            "engine iters",
        ],
    );
    let truth2 = tiny_cfg("path2", &[(1, 0), (2, 1)]);
    let truth3 = tiny_cfg("ring3", &[(1, 0), (2, 1)]);
    let decoy = tiny_cfg("path2", &[(3, 0), (4, 1)]);
    let mut cases: Vec<(&str, InitialConfiguration, Vec<InitialConfiguration>)> = vec![
        ("path2@1", truth2.clone(), vec![truth2.clone()]),
        ("ring3@1", truth3.clone(), vec![truth3.clone()]),
        (
            "ring3@2",
            truth3.clone(),
            vec![decoy.clone(), truth3.clone()],
        ),
    ];
    if !ctx.quick {
        cases.push((
            "ring3@3",
            truth3.clone(),
            vec![
                decoy.clone(),
                tiny_cfg("path2", &[(5, 0), (6, 1)]),
                truth3.clone(),
            ],
        ));
    }
    for (name, truth, omega) in cases {
        let h_star = omega.len();
        let (outcome, reports) = run_unknown(
            &truth,
            SliceEnumeration::new(omega),
            EstMode::Conservative,
            WakeSchedule::Simultaneous,
        )
        .expect("run completes");
        let verdict = validity(&outcome, &truth);
        let report = reports[0].1;
        let ok_cell = match &verdict {
            Ok(_) => "yes".to_string(),
            Err(e) => format!("NO: {e}"),
        };
        t.row(vec![
            name.into(),
            h_star.to_string(),
            ok_cell,
            report.map(|r| r.size.to_string()).unwrap_or_default(),
            report.map(|r| r.leader.to_string()).unwrap_or_default(),
            outcome.rounds.to_string(),
            outcome.engine_iterations.to_string(),
        ]);
    }
    t.note("size must equal the true network size; leader must be the true smallest label.");
    t
}

/// F3 — §4 feasibility-only: round blow-up as the truth moves deeper into
/// the enumeration.
pub fn f3_unknown_growth(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "F3 — unknown-bound rounds vs hypothesis index (exponential by design)",
        vec!["h*", "rounds", "engine iters", "skipped (fast-forwarded)"],
    );
    let truth = tiny_cfg("ring3", &[(1, 0), (2, 1)]);
    let decoys = [
        tiny_cfg("path2", &[(1, 0), (2, 1)]),
        tiny_cfg("path2", &[(3, 0), (4, 1)]),
    ];
    let depth = if ctx.quick { 2 } else { 3 };
    for h_star in 1..=depth {
        let mut omega: Vec<InitialConfiguration> =
            decoys.iter().take(h_star - 1).cloned().collect();
        omega.push(truth.clone());
        let (outcome, _) = run_unknown(
            &truth,
            SliceEnumeration::new(omega),
            EstMode::Conservative,
            WakeSchedule::Simultaneous,
        )
        .expect("run completes");
        let round = validity(&outcome, &truth).expect("F3 runs must validate");
        t.row(vec![
            h_star.to_string(),
            round.to_string(),
            outcome.engine_iterations.to_string(),
            outcome.skipped_rounds.to_string(),
        ]);
    }
    t.note(
        "each extra wrong hypothesis multiplies the round count (the nested \
         S_h/T_h budgets compound) — the paper's 'feasibility only' caveat, measured.",
    );
    t
}

/// T4 — Theorem 5.1 correctness: every agent learns the exact multiset of
/// messages.
pub fn t4_gossip(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "T4 — Gossip correctness (Theorem 5.1)",
        vec!["k", "payload lengths", "ok", "rounds"],
    );
    let teams: &[&[u64]] = if ctx.quick {
        &[&[3, 4], &[2, 5, 9]]
    } else {
        &[&[3, 4], &[2, 5, 9], &[1, 6, 11, 14]]
    };
    for labels in teams {
        let cfg = spread(generators::ring(5.max(labels.len() as u32 + 1)), labels);
        let setup = KnownSetup::for_configuration(&cfg, cfg.size() as u32, 3);
        let messages: Vec<(Label, BitStr)> = cfg
            .agents()
            .iter()
            .enumerate()
            .map(|(i, &(l, _))| (l, BitStr::from_bits((0..i).map(|b| b % 2 == 0).collect())))
            .collect();
        let (outcome, reports) = harness::run_gossip_outcome(
            &cfg,
            &setup,
            CommMode::Silent,
            &messages,
            WakeSchedule::Simultaneous,
        )
        .expect("gossip runs");
        let mut expected: Vec<BitStr> = messages.iter().map(|(_, m)| m.clone()).collect();
        expected.sort();
        let ok = reports.iter().all(|(_, rep)| {
            let mut got: Vec<BitStr> = Vec::new();
            for (payload, k) in rep.outcome.decoded() {
                for _ in 0..k {
                    got.push(payload.clone());
                }
            }
            got.sort();
            got == expected
        });
        t.row(vec![
            labels.len().to_string(),
            format!(
                "{:?}",
                messages.iter().map(|(_, m)| m.len()).collect::<Vec<_>>()
            ),
            if ok { "yes" } else { "NO" }.into(),
            outcome.rounds.to_string(),
        ]);
    }
    t
}

/// F4 — Theorem 5.1 complexity: rounds vs the largest message length.
pub fn f4_gossip_vs_len(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "F4 — gossip rounds vs max message length (Theorem 5.1: polynomial)",
        vec!["|M|", "total rounds", "gossip rounds (excl. gathering)"],
    );
    let lens: &[usize] = if ctx.quick {
        &[1, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 24]
    };
    let cfg = spread(generators::path(3), &[2, 3]);
    let setup = KnownSetup::for_configuration(&cfg, 3, 3);
    // Baseline: gathering-only time, to isolate the gossip term.
    let gather_only =
        harness::run_known(&cfg, &setup, CommMode::Silent, WakeSchedule::Simultaneous)
            .unwrap()
            .gathering()
            .unwrap()
            .round;
    for &len in lens {
        let messages: Vec<(Label, BitStr)> = cfg
            .agents()
            .iter()
            .map(|&(l, _)| (l, BitStr::from_bits(vec![true; len])))
            .collect();
        let (outcome, _) = harness::run_gossip_outcome(
            &cfg,
            &setup,
            CommMode::Silent,
            &messages,
            WakeSchedule::Simultaneous,
        )
        .expect("gossip runs");
        t.row(vec![
            len.to_string(),
            outcome.rounds.to_string(),
            (outcome.rounds - gather_only).to_string(),
        ]);
    }
    t.note(format!(
        "gathering-only baseline: {gather_only} rounds; the gossip term grows \
         quadratically in |M| (length budget climbs 2,4,...,2|M|+2 with cost 5jT each)."
    ));
    t
}

/// T5 — the price of silence: identical instances under the weak model vs.
/// the traditional talking model.
pub fn t5_price_of_silence(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "T5 — price of silence: weak model vs traditional model",
        vec!["family", "n", "k", "silent", "talking", "ratio"],
    );
    let sizes: &[u32] = if ctx.quick { &[6] } else { &[6, 9, 12] };
    let mut ratios = Vec::new();
    for &family in &[Family::Ring, Family::Grid, Family::Star] {
        for &n in sizes {
            let cfg = spread(family.instantiate(n, 5), &[3, 5, 9]);
            let setup = KnownSetup::for_configuration(&cfg, cfg.size() as u32, 5);
            let mut rounds = [0u64; 2];
            for (slot, mode) in [CommMode::Silent, CommMode::Talking]
                .into_iter()
                .enumerate()
            {
                let outcome = harness::run_known(&cfg, &setup, mode, WakeSchedule::Simultaneous)
                    .expect("runs");
                rounds[slot] = outcome.gathering().expect("valid").round;
            }
            let ratio = rounds[0] as f64 / rounds[1] as f64;
            ratios.push(ratio);
            t.row(vec![
                family.name().into(),
                cfg.size().to_string(),
                "3".into(),
                rounds[0].to_string(),
                rounds[1].to_string(),
                format!("{ratio:.3}"),
            ]);
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    t.note(format!(
        "mean ratio {mean:.3}: silence costs the 5i·T Communicate term per phase — \
         a constant factor here, polynomial overhead in general (Theorem 3.1)."
    ));
    t
}

/// T6 — agreement invariants: a randomized batch where every declaration
/// property (same round, same node, same leader, leader in team) is
/// checked individually.
pub fn t6_agreement(ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "T6 — agreement invariants over randomized instances",
        vec![
            "runs",
            "all declared",
            "same round",
            "same node",
            "leader in team",
        ],
    );
    let runs = if ctx.quick { 10 } else { 30 };
    let mut ok = [0u32; 4];
    for seed in 0..runs {
        let g = generators::random_connected(5 + (seed % 6) as u32, (seed % 4) as u32, seed);
        let labels: Vec<u64> = (0..2 + (seed % 3))
            .map(|i| 2 + 3 * i + (seed % 5))
            .collect();
        let cfg = spread(g, &labels);
        let outcome = run_silent(&cfg, WakeSchedule::Staggered { gap: seed % 13 + 1 }, seed);
        let records: Vec<_> = outcome
            .declarations
            .iter()
            .filter_map(|(_, r)| *r)
            .collect();
        if records.len() == outcome.declarations.len() {
            ok[0] += 1;
        }
        if records.windows(2).all(|w| w[0].round == w[1].round) {
            ok[1] += 1;
        }
        if records.windows(2).all(|w| w[0].node == w[1].node) {
            ok[2] += 1;
        }
        if records
            .first()
            .and_then(|r| r.declaration.leader)
            .is_some_and(|l| cfg.contains_label(l))
        {
            ok[3] += 1;
        }
    }
    t.row(vec![
        runs.to_string(),
        format!("{}/{runs}", ok[0]),
        format!("{}/{runs}", ok[1]),
        format!("{}/{runs}", ok[2]),
        format!("{}/{runs}", ok[3]),
    ]);
    t
}

/// A1 — ablation: truncating the certified exploration sequence breaks the
/// wake-up and rendezvous guarantees, and gathering fails.
pub fn a1_uxs_ablation(_ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "A1 — ablation: uncertified (truncated) exploration sequences",
        vec!["fraction", "covers all starts", "gathering"],
    );
    let g = generators::ring(8);
    let cfg = spread(g.clone(), &[2, 3]);
    let full = Uxs::covering(std::slice::from_ref(&g), 11).unwrap();
    for percent in [100usize, 60, 30, 10] {
        let truncated = full.truncated((full.len() * percent / 100).max(1));
        let covers = g.nodes().all(|s| truncated.covers(&g, s));
        let params = KnownParams::new(8, Arc::new(truncated));
        let setup = KnownSetup::from_params(params);
        let result = harness::run_known(&cfg, &setup, CommMode::Silent, WakeSchedule::FirstOnly);
        let verdict = match result {
            Ok(outcome) => match outcome.gathering() {
                Ok(_) => "correct".to_string(),
                Err(e) => format!("FAILS: {e}"),
            },
            Err(e) => format!("engine error: {e}"),
        };
        t.row(vec![format!("{percent}%"), covers.to_string(), verdict]);
    }
    t.note(
        "the certified sequence is load-bearing: with partial coverage the phase-0 \
         exploration no longer wakes everyone and EXPLO-based meetings are lost.",
    );
    t
}

/// A2 — ablation: removing the `EnsureCleanExploration` shield lets a
/// corrupted `EST` reconstruction declare gathering unsoundly (why
/// Algorithm 10 and Lemma 4.10 exist).
pub fn a2_est_ablation(_ctx: ExperimentCtx) -> Table {
    let mut t = Table::new(
        "A2 — ablation: the clean-exploration shield (Algorithm 10)",
        vec!["shield", "EST mode", "outcome"],
    );
    // Real world: a 4-path with a third agent (label 9 ∉ φ_1) parked two
    // hops from the hypothesized central node — outside StarCheck's radius
    // but inside EST+'s walk.
    let truth = InitialConfiguration::new(
        generators::path(4),
        vec![
            (label(1), NodeId::new(0)),
            (label(2), NodeId::new(1)),
            (label(9), NodeId::new(2)),
        ],
    )
    .unwrap();
    let hypo = InitialConfiguration::new(
        generators::path(3),
        vec![(label(1), NodeId::new(0)), (label(2), NodeId::new(1))],
    )
    .unwrap();
    for (shield, mode) in [
        (true, EstMode::Adversarial),
        (false, EstMode::Conservative),
        (false, EstMode::Adversarial),
    ] {
        let (outcome, reports) = run_unknown_with_options(
            &truth,
            SliceEnumeration::new(vec![hypo.clone()]),
            UnknownOptions {
                est_mode: mode,
                disable_clean_exploration: !shield,
            },
            WakeSchedule::Simultaneous,
        )
        .expect("run completes");
        let outcome_str = match outcome.gathering() {
            Ok(r) => format!(
                "UNSOUND: declared size {} on a {}-node network",
                r.size.unwrap(),
                truth.size()
            ),
            Err(_) if outcome.declarations.iter().any(|(_, r)| r.is_some()) => {
                "UNSOUND: partial declaration".into()
            }
            Err(_) => {
                let dirty = reports
                    .iter()
                    .filter_map(|(_, r)| *r)
                    .any(|r| r.est_dirty_observed);
                format!(
                    "safe (hypothesis rejected{})",
                    if dirty { ", dirty EST seen" } else { "" }
                )
            }
        };
        t.row(vec![
            if shield { "on" } else { "OFF" }.into(),
            format!("{mode:?}"),
            outcome_str,
        ]);
    }
    t.note(
        "with the shield on, even an adversarial EST is never exercised (Lemma 4.10); \
         removing the shield lets a dirty exploration accept a wrong hypothesis.",
    );
    t
}

/// Runs an experiment by id; `None` for an unknown id.
pub fn run_experiment(id: &str, ctx: ExperimentCtx) -> Option<Table> {
    Some(match id {
        "t1" => t1_correctness(ctx),
        "f1" => f1_rounds_vs_n(ctx),
        "f2" => f2_rounds_vs_label_len(ctx),
        "t2" => t2_communicate(ctx),
        "t3" => t3_unknown(ctx),
        "f3" => f3_unknown_growth(ctx),
        "t4" => t4_gossip(ctx),
        "f4" => f4_gossip_vs_len(ctx),
        "t5" => t5_price_of_silence(ctx),
        "t6" => t6_agreement(ctx),
        "a1" => a1_uxs_ablation(ctx),
        "a2" => a2_est_ablation(ctx),
        _ => return None,
    })
}

/// All experiment ids, in presentation order.
pub fn all_experiment_ids() -> &'static [&'static str] {
    &[
        "t1", "f1", "f2", "t2", "t3", "f3", "t4", "f4", "t5", "t6", "a1", "a2",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentCtx {
        ExperimentCtx { quick: true }
    }

    #[test]
    fn t1_has_no_failures() {
        let t = t1_correctness(quick());
        assert!(t.notes[0].contains("violations: 0"));
    }

    #[test]
    fn t2_all_rows_ok() {
        let t = t2_communicate(quick());
        assert!(t.rows.iter().all(|r| r.last().unwrap() == "yes"));
    }

    #[test]
    fn t6_all_invariants_hold() {
        let t = t6_agreement(quick());
        let row = &t.rows[0];
        for cell in &row[1..] {
            let (num, den) = cell.split_once('/').unwrap();
            assert_eq!(num, den, "invariant broken: {cell}");
        }
    }

    #[test]
    fn a1_truncation_breaks_gathering() {
        let t = a1_uxs_ablation(quick());
        assert!(t.rows[0][2].contains("correct"), "{:?}", t.rows[0]);
        assert!(
            t.rows
                .iter()
                .any(|r| r[2].contains("FAILS") || r[2].contains("error")),
            "some truncation must break gathering: {:?}",
            t.rows
        );
    }

    #[test]
    fn a2_shield_is_load_bearing() {
        let t = a2_est_ablation(quick());
        // Shield on: safe.
        assert!(t.rows[0][2].contains("safe"), "{:?}", t.rows[0]);
        // Shield off with adversarial EST: unsound.
        assert!(
            t.rows[2][2].contains("UNSOUND"),
            "removing the shield must be demonstrably unsound: {:?}",
            t.rows[2]
        );
    }

    #[test]
    fn unknown_ids_are_rejected() {
        assert!(run_experiment("zz", quick()).is_none());
    }

    #[test]
    fn markdown_renders() {
        let t = t6_agreement(quick());
        let md = t.to_markdown();
        assert!(md.contains("### T6"));
        assert!(md.contains("|---|"));
    }
}
