//! The `TZ(L)` rendezvous procedure (paper §2).
//!
//! `GatherKnownUpperBound` breaks the symmetry between groups of agents by
//! running a label-parameterized rendezvous procedure the paper borrows from
//! Ta-Shma and Zwick: if two agents (or two lock-stepped groups) execute
//! `TZ` with *different* parameters, starting at most `T(EXPLO(N))/2` rounds
//! apart, they meet within `P(N, ℓ)` rounds of the later start, where `ℓ`
//! bounds the bit length of the smaller parameter.
//!
//! Our construction (see `DESIGN.md` §3.2) is the classical label-schedule
//! one: time is divided into blocks of `2·T(EXPLO(N))` rounds; the bits of
//! `code(x_λ)` (each label bit doubled, then the terminator `01` — the
//! prefix-free encoding of Proposition 2.1) select per block whether the
//! agent is *active* (wait T/2, run `EXPLO(N)`, wait T/2) or *passive* (wait
//! the whole block; bit 1 = passive), with all-passive padding afterwards
//! and `TZ(0)` defined as all-passive. Distinct parameters give schedules
//! that differ in some block `j ≤ 2ℓ+2` because `code` is prefix-free; in
//! the first differing block the active party's full exploration lands
//! inside the passive party's waiting window (start offsets ≤ T/2 shift the
//! windows by less than the wait margins), and exploration visits every
//! node, forcing a meeting.
//!
//! # Example
//!
//! ```
//! use nochatter_rendezvous::ActivitySchedule;
//!
//! // code(binary of 2) = code("10") = 1 1 0 0 0 1; bit 0 = active.
//! let s = ActivitySchedule::for_param(2);
//! let acts: Vec<bool> = (0..7).map(|b| s.is_active(b)).collect();
//! assert_eq!(acts, vec![false, false, true, true, true, false, false]);
//! // TZ(0) never moves.
//! assert!(!ActivitySchedule::for_param(0).is_active(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::convert::Infallible;
use std::sync::Arc;

use nochatter_explore::{Explo, Uxs};
use nochatter_sim::proc::Procedure;
use nochatter_sim::{Action, Obs, Poll};

/// Which blocks of `TZ` are active, derived from the parameter's prefix-free
/// encoding; see the [crate docs](self).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActivitySchedule {
    /// `code(x_λ)`: true = passive (bit 1), false = active (bit 0). Blocks
    /// beyond the end are passive.
    bits: Vec<bool>,
}

impl ActivitySchedule {
    /// The schedule of `TZ(lambda)`. `lambda == 0` (the "no label learned"
    /// sentinel of Algorithm 3) is all-passive.
    pub fn for_param(lambda: u64) -> Self {
        if lambda == 0 {
            return ActivitySchedule { bits: Vec::new() };
        }
        let len = 64 - lambda.leading_zeros();
        let mut bits = Vec::with_capacity(2 * len as usize + 2);
        for i in (0..len).rev() {
            let bit = (lambda >> i) & 1 == 1;
            bits.push(bit);
            bits.push(bit);
        }
        bits.push(false);
        bits.push(true);
        ActivitySchedule { bits }
    }

    /// Whether block `block` (0-based) is active.
    pub fn is_active(&self, block: usize) -> bool {
        match self.bits.get(block) {
            Some(&passive_bit) => !passive_bit,
            None => false,
        }
    }

    /// Length of the explicitly encoded prefix (`2ℓ+2` for an `ℓ`-bit
    /// parameter, 0 for the sentinel).
    pub fn encoded_len(&self) -> usize {
        self.bits.len()
    }

    /// The first block where two schedules differ, if within both encoded
    /// prefixes extended with passive padding.
    pub fn first_difference(&self, other: &ActivitySchedule) -> Option<usize> {
        let horizon = self.bits.len().max(other.bits.len());
        (0..horizon).find(|&b| self.is_active(b) != other.is_active(b))
    }
}

/// The meeting-time polynomial `P(N, ℓ)` for our `TZ` construction: if two
/// parties with distinct parameters start `TZ` at most `T(EXPLO)/2` rounds
/// apart and one parameter has bit length at most `bit_len`, they share a
/// node within this many rounds of the later start (tests assert it across
/// graph/label/offset sweeps).
pub fn meeting_bound(uxs: &Uxs, bit_len: u32) -> u64 {
    (4 * u64::from(bit_len) + 6) * Explo::duration(uxs)
}

/// The `TZ(λ)` procedure. Never completes on its own — Algorithm 3 runs it
/// for a fixed number of rounds (`RunFor`) and interrupts on meetings
/// (`UntilCardExceeds`).
#[derive(Clone, Debug)]
pub struct Tz {
    schedule: ActivitySchedule,
    uxs: Arc<Uxs>,
    /// `L`: half of `T(EXPLO)`.
    l: u64,
    block: usize,
    tick: u64,
    explo: Option<Explo>,
}

impl Tz {
    /// `TZ(lambda)` driven by the shared exploration sequence.
    ///
    /// # Panics
    ///
    /// Panics if `uxs` is empty.
    pub fn new(lambda: u64, uxs: Arc<Uxs>) -> Self {
        assert!(!uxs.is_empty(), "TZ needs a non-empty exploration sequence");
        Tz {
            schedule: ActivitySchedule::for_param(lambda),
            l: uxs.len() as u64,
            uxs,
            block: 0,
            tick: 0,
            explo: None,
        }
    }

    /// Rounds per block: `2 * T(EXPLO)`.
    pub fn block_len(&self) -> u64 {
        4 * self.l
    }
}

impl Procedure for Tz {
    type Output = Infallible;

    fn poll(&mut self, obs: &Obs) -> Poll<Infallible> {
        let block_len = self.block_len();
        if self.tick >= block_len {
            self.tick = 0;
            self.block += 1;
            self.explo = None;
        }
        let action =
            if self.schedule.is_active(self.block) && (self.l..3 * self.l).contains(&self.tick) {
                let explo = self
                    .explo
                    .get_or_insert_with(|| Explo::new(Arc::clone(&self.uxs)));
                match explo.poll(obs) {
                    Poll::Yield(a) => a,
                    // EXPLO lasts exactly 2L polls and the active window is 2L
                    // polls wide, so completion cannot be observed here.
                    Poll::Complete(_) => unreachable!("EXPLO window sized to its duration"),
                }
            } else {
                Action::Wait
            };
        self.tick += 1;
        Poll::Yield(action)
    }

    fn min_wait(&self) -> u64 {
        // From the state *after* the last yield (tick points at the next
        // poll), count guaranteed waits.
        let block_len = self.block_len();
        let tick = if self.tick >= block_len { 0 } else { self.tick };
        let block = if self.tick >= block_len {
            self.block + 1
        } else {
            self.block
        };
        if !self.schedule.is_active(block) {
            let mut quiet = block_len - tick;
            // Extend through consecutive passive blocks, notably the
            // infinite passive tail (capped — callers re-query anyway).
            let mut b = block + 1;
            while !self.schedule.is_active(b) && quiet < (1 << 40) {
                if b >= self.schedule.encoded_len() {
                    // All-passive forever from here.
                    return u64::MAX;
                }
                quiet += block_len;
                b += 1;
            }
            quiet
        } else if tick < self.l {
            self.l - tick
        } else if tick >= 3 * self.l {
            block_len - tick
        } else {
            0
        }
    }

    fn note_skipped(&mut self, rounds: u64) {
        // Contract: rounds <= min_wait(), i.e. we stay within waiting
        // stretches; just advance the clock.
        let block_len = self.block_len();
        let mut left = rounds;
        loop {
            if self.tick >= block_len {
                self.tick = 0;
                self.block += 1;
                self.explo = None;
            }
            let room = block_len - self.tick;
            if left < room {
                self.tick += left;
                break;
            }
            self.tick += room;
            left -= room;
            if left == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nochatter_graph::{generators, Graph, Label, NodeId};
    use nochatter_sim::proc::{ProcBehavior, UntilCardExceeds};
    use nochatter_sim::{Engine, WakeSchedule};

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    #[test]
    fn schedule_encoding_matches_code() {
        // λ = 5 = 101 -> code = 11 00 11 01 (passive bits), so active
        // (bit 0) blocks are 2, 3 and 6.
        let s = ActivitySchedule::for_param(5);
        assert_eq!(s.encoded_len(), 8);
        let active: Vec<usize> = (0..10).filter(|&b| s.is_active(b)).collect();
        assert_eq!(active, vec![2, 3, 6]);
    }

    #[test]
    fn distinct_params_differ_within_bound() {
        let params: Vec<u64> = vec![1, 2, 3, 5, 6, 7, 12, 13, 100, 255];
        for &a in &params {
            for &b in &params {
                if a == b {
                    continue;
                }
                let sa = ActivitySchedule::for_param(a);
                let sb = ActivitySchedule::for_param(b);
                let diff = sa
                    .first_difference(&sb)
                    .expect("prefix-free encodings must differ");
                let min_bits = (64 - a.leading_zeros()).min(64 - b.leading_zeros());
                assert!(
                    diff < (2 * min_bits + 2) as usize,
                    "params {a},{b} differ at {diff}, expected < {}",
                    2 * min_bits + 2
                );
            }
        }
    }

    #[test]
    fn zero_is_all_passive_and_differs_from_any() {
        let z = ActivitySchedule::for_param(0);
        assert!((0..100).all(|b| !z.is_active(b)));
        for lambda in [1u64, 2, 9, 31] {
            let s = ActivitySchedule::for_param(lambda);
            assert!(z.first_difference(&s).is_some());
        }
    }

    /// Runs two agents executing TZ (wrapped to declare on meeting) with the
    /// given start offset; returns the meeting round (round of the later
    /// agent's declaration) if they met.
    fn run_tz(
        g: &Graph,
        starts: (u32, u32),
        params: (u64, u64),
        offset: u64,
        uxs: &Arc<Uxs>,
        max_rounds: u64,
    ) -> Option<u64> {
        let mut engine = Engine::new(g);
        for (i, (start, param)) in [(starts.0, params.0), (starts.1, params.1)]
            .into_iter()
            .enumerate()
        {
            engine.add_agent(
                label(i as u64 + 1),
                NodeId::new(start),
                Box::new(ProcBehavior::declaring(UntilCardExceeds::new(
                    1,
                    Tz::new(param, Arc::clone(uxs)),
                ))),
            );
        }
        engine.set_wake_schedule(WakeSchedule::Explicit(vec![0, offset]));
        let outcome = engine.run(max_rounds).ok()?;
        if !outcome.all_declared() {
            return None;
        }
        let report = outcome.gathering().ok()?;
        Some(report.round)
    }

    #[test]
    fn two_agents_meet_within_bound() {
        let graphs = vec![
            generators::ring(6),
            generators::path(5),
            generators::star(5),
            generators::random_connected(7, 3, 2),
        ];
        let uxs = Arc::new(Uxs::covering(&graphs, 13).unwrap());
        let t = Explo::duration(&uxs);
        let pairs: Vec<(u64, u64)> = vec![(1, 2), (3, 4), (5, 12), (2, 9)];
        for g in &graphs {
            for &(a, b) in &pairs {
                for offset in [0, t / 4, t / 2] {
                    let min_bits = (64 - a.leading_zeros()).min(64 - b.leading_zeros());
                    let bound = meeting_bound(&uxs, min_bits);
                    let met = run_tz(g, (0, 2), (a, b), offset, &uxs, offset + bound + 1)
                        .unwrap_or_else(|| {
                            panic!("params ({a},{b}) offset {offset} on {g:?}: no meeting")
                        });
                    assert!(
                        met <= offset + bound,
                        "met at {met}, bound was {} (offset {offset})",
                        offset + bound
                    );
                }
            }
        }
    }

    #[test]
    fn nonzero_meets_sentinel_zero() {
        // One group learned a label (λ=9), the other learned nothing (λ=0):
        // the active one must find the passive one.
        let g = generators::ring(8);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 3).unwrap());
        let bound = meeting_bound(&uxs, 4);
        let met = run_tz(&g, (1, 5), (9, 0), 0, &uxs, bound + 1).expect("must meet");
        assert!(met <= bound);
    }

    #[test]
    fn sentinel_never_moves() {
        let mut tz = Tz::new(0, Arc::new(Uxs::from_steps(vec![1, 1])));
        let obs = Obs::synthetic(0, 2, 1, None);
        for _ in 0..100 {
            match tz.poll(&obs) {
                Poll::Yield(Action::Wait) => {}
                other => panic!("TZ(0) must always wait, got {other:?}"),
            }
        }
        assert_eq!(tz.min_wait(), u64::MAX);
    }

    #[test]
    fn equal_params_stay_symmetric_on_ring() {
        // Two agents with the same parameter on a symmetric ring never meet;
        // the run hits its round limit with nobody declared.
        let g = generators::ring(6);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 3).unwrap());
        let result = run_tz(&g, (0, 3), (5, 5), 0, &uxs, 20_000);
        assert_eq!(result, None);
    }

    #[test]
    fn min_wait_and_skip_are_consistent() {
        // Drive one TZ with polls only, another with poll+skip mixes; the
        // action streams must agree. The synthetic observation carries an
        // entry port because EXPLO reads it after every move.
        let uxs = Arc::new(Uxs::from_steps(vec![1, 0, 1]));
        let obs = Obs::synthetic(1, 2, 1, Some(nochatter_graph::Port::new(0)));
        let mut reference = Tz::new(6, Arc::clone(&uxs));
        let mut actions = Vec::new();
        for _ in 0..200 {
            match reference.poll(&obs) {
                Poll::Yield(a) => actions.push(a),
                Poll::Complete(_) => unreachable!(),
            }
        }
        let mut skipping = Tz::new(6, Arc::clone(&uxs));
        let mut i = 0;
        while i < 200 {
            match skipping.poll(&obs) {
                Poll::Yield(a) => {
                    assert_eq!(a, actions[i], "divergence at round {i}");
                    i += 1;
                    if a == Action::Wait {
                        let skip = skipping.min_wait().min((200 - i) as u64);
                        if skip > 0 && skip != u64::MAX {
                            // All skipped rounds must be waits in the reference.
                            for j in 0..skip as usize {
                                assert_eq!(actions[i + j], Action::Wait);
                            }
                            skipping.note_skipped(skip);
                            i += skip as usize;
                        }
                    }
                }
                Poll::Complete(_) => unreachable!(),
            }
        }
    }
}
