//! Exploration substrate: universal exploration sequences and the paper's
//! `EXPLO(N)` procedure.
//!
//! The gathering algorithms of *Want to Gather? No Need to Chatter!* treat
//! graph exploration as a black box with a precise contract (paper §2):
//! `EXPLO(N)` visits every node of any graph of size at most `N` from any
//! start node during its *effective* half, then retraces its steps during
//! the *backtrack* half, taking exactly `T(EXPLO(N))` rounds in total — the
//! same number for every agent, because all agents follow the same
//! *universal exploration sequence* (UXS).
//!
//! The paper cites Reingold's log-space construction for the existence of
//! polynomial UXS. Reproducing that construction is neither practical nor
//! necessary: what the algorithms consume is the *contract*, which this
//! crate provides two ways (see `DESIGN.md` §3.1):
//!
//! * [`Uxs::exhaustive_universal`] — a sequence verified against **every**
//!   connected port-labeled graph of size `<= n` (exhaustively enumerated),
//!   i.e. a genuine universal exploration sequence for that size class;
//! * [`Uxs::covering`] — a sequence greedily grown and *certified* to cover
//!   a given corpus of graphs from every start node, for sizes where
//!   exhaustive enumeration is out of reach.
//!
//! Both are deterministic in their seed, so every agent derives the same
//! sequence — exactly as if it were hardwired in the algorithm.
//!
//! The crate also provides [`paths::Paths`], the lexicographic enumerator of
//! bounded port sequences behind `BallTraversal`, `EnsureCleanExploration`
//! and `EST+` (paper §4).
//!
//! # Example
//!
//! ```
//! use nochatter_explore::Uxs;
//! use nochatter_graph::{generators, NodeId};
//!
//! let corpus = vec![generators::ring(6), generators::torus(3, 3)];
//! let uxs = Uxs::covering(&corpus, 7).unwrap();
//! for g in &corpus {
//!     for start in g.nodes() {
//!         assert!(uxs.covers(g, start));
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explo;
mod uxs;

pub mod paths;

pub use explo::{Explo, ExploOutcome};
pub use uxs::{Uxs, UxsError};
