//! Universal exploration sequences.

use std::error::Error;
use std::fmt;

use nochatter_graph::enumerate;
use nochatter_graph::rng::Rng;
use nochatter_graph::{Graph, NodeId, Port};

/// A universal exploration sequence: a fixed sequence of non-negative
/// integers `x_1, x_2, ...` driving a walk. After entering a node of degree
/// `d` by port `p` (the start node counts as entered by port 0), the walker
/// exits by port `(p + x_i) mod d`.
///
/// Construct with [`Uxs::covering`] (certified against a corpus),
/// [`Uxs::exhaustive_universal`] (certified against *all* small graphs) or
/// [`Uxs::pseudorandom`] (uncertified, for ablations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Uxs {
    steps: Vec<u32>,
}

/// Failure to certify a sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum UxsError {
    /// The greedy construction failed to cover the corpus within the step
    /// budget (practically unreachable for connected corpora; the budget
    /// guards against pathological inputs).
    CertificationFailed {
        /// How many steps were tried.
        steps_tried: usize,
    },
    /// The corpus was empty.
    EmptyCorpus,
}

impl fmt::Display for UxsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UxsError::CertificationFailed { steps_tried } => write!(
                f,
                "failed to certify a covering sequence within {steps_tried} steps"
            ),
            UxsError::EmptyCorpus => write!(f, "cannot certify against an empty corpus"),
        }
    }
}

impl Error for UxsError {}

/// Walker state inside one (graph, start) pair during certification.
#[derive(Clone)]
struct WalkState<'g> {
    graph: &'g Graph,
    at: NodeId,
    entry: u32,
    visited: Vec<bool>,
    remaining: usize,
}

impl<'g> WalkState<'g> {
    fn new(graph: &'g Graph, start: NodeId) -> Self {
        let mut visited = vec![false; graph.node_count()];
        visited[start.index()] = true;
        WalkState {
            graph,
            at: start,
            entry: 0,
            remaining: graph.node_count() - 1,
            visited,
        }
    }

    /// Applies step `x`; returns 1 if a new node was visited.
    fn advance(&mut self, x: u32) -> usize {
        let d = self.graph.degree(self.at);
        let q = (self.entry + x) % d;
        let (to, back) = self
            .graph
            .neighbor(self.at, Port::new(q))
            .expect("port within degree");
        self.at = to;
        self.entry = back.number();
        if !self.visited[to.index()] {
            self.visited[to.index()] = true;
            self.remaining -= 1;
            1
        } else {
            0
        }
    }

    /// New nodes that step `x` would visit, without applying it.
    fn gain(&self, x: u32) -> usize {
        let d = self.graph.degree(self.at);
        let q = (self.entry + x) % d;
        let (to, _) = self
            .graph
            .neighbor(self.at, Port::new(q))
            .expect("port within degree");
        usize::from(!self.visited[to.index()])
    }
}

impl Uxs {
    /// Wraps an explicit step sequence.
    pub fn from_steps(steps: Vec<u32>) -> Self {
        Uxs { steps }
    }

    /// The number of steps (each step is one edge traversal of the
    /// effective part; `T(EXPLO) = 2 * len`).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The `i`-th step (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn step(&self, i: usize) -> u32 {
        self.steps[i]
    }

    /// An uncertified pseudorandom sequence of the given length —
    /// deterministic in `seed`. Used as raw material by the certified
    /// constructors and directly by the ablation that demonstrates why
    /// certification matters.
    pub fn pseudorandom(len: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        // Steps are reduced modulo the degree at walk time, so any range
        // works; keep them small for readability of dumps.
        let steps = (0..len).map(|_| rng.range(1 << 16) as u32).collect();
        Uxs { steps }
    }

    /// Greedily grows a sequence certified to visit all nodes of every
    /// corpus graph from every start node, then returns it. Deterministic
    /// in `seed`. The greedy step picks the increment that lets the most
    /// walkers discover a new node, falling back to pseudorandom steps when
    /// no increment makes immediate progress.
    ///
    /// # Errors
    ///
    /// [`UxsError::EmptyCorpus`] for an empty corpus;
    /// [`UxsError::CertificationFailed`] if the step budget is exhausted
    /// (not expected for valid connected graphs).
    pub fn covering(corpus: &[Graph], seed: u64) -> Result<Self, UxsError> {
        if corpus.is_empty() {
            return Err(UxsError::EmptyCorpus);
        }
        let mut rng = Rng::seed_from(seed ^ 0x5EED_u64);
        let mut states: Vec<WalkState<'_>> = corpus
            .iter()
            .flat_map(|g| g.nodes().map(move |s| WalkState::new(g, s)))
            .collect();
        let max_degree = corpus.iter().map(Graph::max_degree).max().unwrap_or(1);
        let total_nodes: usize = states.iter().map(|s| s.remaining).sum();
        // Generous budget: random walks cover in O(n^3) expected steps and
        // the greedy does strictly better; multiply out for safety.
        let budget = 64 * (total_nodes + 1) * (total_nodes + 1) + 4096;
        let mut steps = Vec::new();
        while states.iter().any(|s| s.remaining > 0) {
            if steps.len() >= budget {
                return Err(UxsError::CertificationFailed {
                    steps_tried: steps.len(),
                });
            }
            let mut best_x = None;
            let mut best_gain = 0usize;
            for x in 0..max_degree.max(1) {
                let gain: usize = states.iter().map(|s| s.gain(x)).sum();
                if gain > best_gain {
                    best_gain = gain;
                    best_x = Some(x);
                }
            }
            let x = match best_x {
                Some(x) => x,
                // No immediate progress anywhere: take a pseudorandom step
                // to shake all walkers out of their current positions.
                None => rng.range(u64::from(max_degree.max(1))) as u32,
            };
            for s in &mut states {
                s.advance(x);
            }
            steps.push(x);
        }
        Ok(Uxs { steps })
    }

    /// A genuine universal exploration sequence for all graphs of size
    /// `2..=n`: certified against the exhaustive enumeration of every
    /// connected port-labeled graph of those sizes. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n > `[`enumerate::MAX_EXHAUSTIVE_N`] (the
    /// enumeration would explode; use [`Uxs::covering`] with a corpus for
    /// larger sizes).
    pub fn exhaustive_universal(n: u32, seed: u64) -> Self {
        let corpus = enumerate::connected_graphs_up_to(n);
        Uxs::covering(&corpus, seed).expect("exhaustive corpus is coverable")
    }

    /// Simulates the walk on `graph` from `start` and reports whether every
    /// node is visited.
    pub fn covers(&self, graph: &Graph, start: NodeId) -> bool {
        let mut state = WalkState::new(graph, start);
        for &x in &self.steps {
            if state.remaining == 0 {
                return true;
            }
            state.advance(x);
        }
        state.remaining == 0
    }

    /// Whether the walk covers every graph in `corpus` from every start.
    pub fn covers_corpus(&self, corpus: &[Graph]) -> bool {
        corpus.iter().all(|g| g.nodes().all(|s| self.covers(g, s)))
    }

    /// The nodes visited (in order, with repeats) by the walk on `graph`
    /// from `start`, including the start; ground-truth introspection for
    /// tests and oracles.
    pub fn walk(&self, graph: &Graph, start: NodeId) -> Vec<NodeId> {
        let mut state = WalkState::new(graph, start);
        let mut nodes = vec![start];
        for &x in &self.steps {
            state.advance(x);
            nodes.push(state.at);
        }
        nodes
    }

    /// Truncates to the first `len` steps (for the certification ablation).
    pub fn truncated(&self, len: usize) -> Uxs {
        Uxs {
            steps: self.steps[..len.min(self.steps.len())].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nochatter_graph::generators;

    fn standard_corpus() -> Vec<Graph> {
        vec![
            generators::ring(8),
            generators::path(7),
            generators::star(6),
            generators::complete(5),
            generators::grid(3, 3),
            generators::random_connected(9, 4, 11),
        ]
    }

    #[test]
    fn covering_certifies_standard_corpus() {
        let corpus = standard_corpus();
        let uxs = Uxs::covering(&corpus, 1).unwrap();
        assert!(uxs.covers_corpus(&corpus));
        assert!(!uxs.is_empty());
    }

    #[test]
    fn covering_is_deterministic_in_seed() {
        let corpus = standard_corpus();
        let a = Uxs::covering(&corpus, 5).unwrap();
        let b = Uxs::covering(&corpus, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn exhaustive_universal_covers_all_small_graphs() {
        let uxs = Uxs::exhaustive_universal(3, 0);
        let corpus = enumerate::connected_graphs_up_to(3);
        assert!(uxs.covers_corpus(&corpus));
        // ...including graphs it was not explicitly built against, as long
        // as they are within the size class: trivially true here, but assert
        // on a concrete instance for clarity.
        assert!(uxs.covers(&generators::ring(3), NodeId::new(1)));
    }

    #[test]
    fn exhaustive_universal_size_4() {
        let uxs = Uxs::exhaustive_universal(4, 0);
        let corpus = enumerate::connected_graphs_up_to(4);
        assert!(uxs.covers_corpus(&corpus));
    }

    #[test]
    fn truncated_sequence_loses_coverage() {
        let corpus = standard_corpus();
        let uxs = Uxs::covering(&corpus, 1).unwrap();
        // One step cannot cover an 8-ring.
        let stub = uxs.truncated(1);
        assert!(!stub.covers(&corpus[0], NodeId::new(0)));
    }

    #[test]
    fn walk_starts_at_start_and_has_len_plus_one_nodes() {
        let g = generators::ring(5);
        let uxs = Uxs::from_steps(vec![1, 1, 1]);
        let walk = uxs.walk(&g, NodeId::new(2));
        assert_eq!(walk.len(), 4);
        assert_eq!(walk[0], NodeId::new(2));
    }

    #[test]
    fn pseudorandom_is_deterministic() {
        assert_eq!(Uxs::pseudorandom(32, 9), Uxs::pseudorandom(32, 9));
        assert_ne!(Uxs::pseudorandom(32, 9), Uxs::pseudorandom(32, 10));
    }

    #[test]
    fn empty_corpus_is_an_error() {
        assert_eq!(Uxs::covering(&[], 0), Err(UxsError::EmptyCorpus));
    }

    #[test]
    fn covers_two_node_graph_with_any_step() {
        let g = generators::path(2);
        let uxs = Uxs::from_steps(vec![0]);
        assert!(uxs.covers(&g, NodeId::new(0)));
        assert!(uxs.covers(&g, NodeId::new(1)));
    }

    #[test]
    fn walk_rule_matches_definition() {
        // On a ring with the canonical numbering (port 0 ccw, port 1 cw),
        // entering by port 0 and applying x=1 exits by port (0+1)%2 = 1.
        let g = generators::ring(4);
        let uxs = Uxs::from_steps(vec![1, 0, 0, 0]);
        let walk = uxs.walk(&g, NodeId::new(0));
        // Start entry port is defined as 0, so first exit is port 1 -> node 1.
        assert_eq!(walk[1], NodeId::new(1));
        // Entered node 1 by port 0; x=0 exits by port 0 -> back to node 0.
        assert_eq!(walk[2], NodeId::new(0));
    }
}
