//! The `EXPLO(N)` procedure: effective traversal plus backtrack.

use std::sync::Arc;

use nochatter_graph::Port;
use nochatter_sim::proc::Procedure;
use nochatter_sim::{Action, Obs, Poll};

use crate::uxs::Uxs;

/// What `EXPLO` reports on completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploOutcome {
    /// The smallest `CurCard` observed during the execution — Algorithm 4
    /// (function `Communicate`) uses this to count how many agents moved
    /// together.
    pub min_card: u32,
}

/// The paper's `EXPLO(N)` (§2): follow the universal exploration sequence
/// for `uxs.len()` rounds (the *effective part*, which visits every node of
/// any covered graph), then retrace all traversed edges in reverse order
/// (the *backtrack part*), ending at the start node. Lasts exactly
/// `2 * uxs.len()` rounds — [`Explo::duration`].
///
/// The walk rule: after entering a node of degree `d` by port `p` (the start
/// node counts as entered by port 0), exit by port `(p + x_i) mod d`.
///
/// Under a round-varying topology (see [`nochatter_graph::dynamic`]) a
/// traversal can be *blocked*: the agent stays put and observes
/// `blocked: true` next round. `EXPLO` then rewinds one tick and re-attempts
/// the same traversal, so the walk it performs is always a genuine walk of
/// the base graph — at the cost of stretching past the nominal duration.
/// On the static model `blocked` is never set and the duration is exact.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use nochatter_explore::{Explo, Uxs};
///
/// let uxs = Arc::new(Uxs::from_steps(vec![1, 1, 1, 1]));
/// assert_eq!(Explo::duration(&uxs), 8);
/// let explo = Explo::new(uxs);
/// # let _ = explo;
/// ```
#[derive(Clone, Debug)]
pub struct Explo {
    uxs: Arc<Uxs>,
    /// Index of the next poll within the procedure: `0..2L`.
    tick: usize,
    /// Entry ports of the forward moves, recorded as they are observed.
    entries: Vec<Port>,
    min_card: u32,
}

impl Explo {
    /// A fresh execution of `EXPLO` driven by `uxs`.
    pub fn new(uxs: Arc<Uxs>) -> Self {
        Explo {
            entries: Vec::with_capacity(uxs.len()),
            uxs,
            tick: 0,
            min_card: u32::MAX,
        }
    }

    /// `T(EXPLO)`: the exact duration in rounds, `2 * uxs.len()`.
    pub fn duration(uxs: &Uxs) -> u64 {
        2 * uxs.len() as u64
    }
}

impl Procedure for Explo {
    type Output = ExploOutcome;

    fn poll(&mut self, obs: &Obs) -> Poll<ExploOutcome> {
        let len = self.uxs.len();
        // A blocked traversal (round-varying topologies only): the
        // previous yield did not move and recorded no entry, so rewind one
        // tick and re-attempt the identical traversal this round.
        if obs.blocked && self.tick >= 1 {
            self.tick -= 1;
        }
        if self.tick < 2 * len {
            self.min_card = self.min_card.min(obs.cur_card);
        }
        // Record the entry port of the previous forward move (observations
        // arrive one round after the move that caused them).
        if self.tick >= 1 && self.tick <= len && self.entries.len() < self.tick {
            let p = obs
                .entry_port
                .expect("agent moved last round, entry port must be known");
            self.entries.push(p);
        }
        if self.tick < len {
            // Effective part: entry port of the current node is 0 at the
            // start, else the recorded entry of the previous move.
            let p = if self.tick == 0 {
                0
            } else {
                self.entries[self.tick - 1].number()
            };
            let q = (p + self.uxs.step(self.tick)) % obs.degree.max(1);
            self.tick += 1;
            Poll::Yield(Action::TakePort(Port::new(q)))
        } else if self.tick < 2 * len {
            // Backtrack part: re-traverse edges in reverse entry order.
            let back = self.entries[2 * len - 1 - self.tick];
            self.tick += 1;
            Poll::Yield(Action::TakePort(back))
        } else {
            Poll::Complete(ExploOutcome {
                min_card: if self.min_card == u32::MAX {
                    // Zero-length sequence: no observation was consumed.
                    obs.cur_card
                } else {
                    self.min_card
                },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nochatter_graph::{generators, Label, NodeId};
    use nochatter_sim::proc::ProcBehavior;
    use nochatter_sim::{Declaration, Engine, TraceEvent, WakeSchedule};

    fn label(v: u64) -> Label {
        Label::new(v).unwrap()
    }

    /// Runs a single agent executing EXPLO and returns (declare round,
    /// declare node, visited nodes).
    fn run_single(
        g: &nochatter_graph::Graph,
        start: NodeId,
        uxs: Arc<Uxs>,
    ) -> (u64, NodeId, Vec<NodeId>) {
        let mut engine = Engine::new(g);
        engine.add_agent(
            label(1),
            start,
            Box::new(ProcBehavior::declaring(Explo::new(uxs))),
        );
        // A second, inert agent parked far away so the engine setup is
        // realistic (the model assumes >= 2 agents); it declares instantly.
        let other = g
            .nodes()
            .find(|&v| v != start)
            .expect("graph has >= 2 nodes");
        engine.add_agent(
            label(2),
            other,
            Box::new(ProcBehavior::declaring(
                nochatter_sim::proc::WaitRounds::new(0),
            )),
        );
        engine.set_wake_schedule(WakeSchedule::Simultaneous);
        engine.record_trace(100_000);
        let outcome = engine.run(1_000_000).unwrap();
        assert!(outcome.all_declared());
        let rec = outcome.declarations[0].1.unwrap();
        let trace = outcome.trace.unwrap();
        let mut visited = vec![start];
        for e in trace.events() {
            if let TraceEvent::Move { agent, to, .. } = e {
                if *agent == label(1) {
                    visited.push(*to);
                }
            }
        }
        (rec.round, rec.node, visited)
    }

    #[test]
    fn explo_lasts_exactly_2l_and_returns_to_start() {
        let g = generators::ring(6);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 3).unwrap());
        let duration = Explo::duration(&uxs);
        for start in g.nodes() {
            let (round, node, _) = run_single(&g, start, Arc::clone(&uxs));
            assert_eq!(node, start, "backtrack must return to the start");
            assert_eq!(round, duration, "declares right after 2L move rounds");
        }
    }

    #[test]
    fn effective_part_visits_all_nodes() {
        let corpus = vec![
            generators::ring(7),
            generators::grid(3, 3),
            generators::star(5),
        ];
        let uxs = Arc::new(Uxs::covering(&corpus, 0).unwrap());
        for g in &corpus {
            for start in g.nodes() {
                let (_, _, visited) = run_single(g, start, Arc::clone(&uxs));
                let distinct: std::collections::HashSet<_> = visited.iter().copied().collect();
                assert_eq!(
                    distinct.len(),
                    g.node_count(),
                    "EXPLO must visit every node of {g:?} from {start}"
                );
            }
        }
    }

    #[test]
    fn engine_walk_matches_uxs_simulation() {
        // The in-engine walk must agree exactly with Uxs::walk ground truth.
        let g = generators::random_connected(8, 5, 21);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 4).unwrap());
        let start = NodeId::new(3);
        let (_, _, visited) = run_single(&g, start, Arc::clone(&uxs));
        let expected = uxs.walk(&g, start);
        assert_eq!(&visited[..expected.len()], &expected[..]);
    }

    #[test]
    fn min_card_tracks_companions() {
        // Two agents at the same node execute EXPLO in lockstep: both see
        // min_card == 2 the whole way. We verify via the mapped declaration.
        let g = generators::ring(5);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 5).unwrap());
        let mut engine = Engine::new(&g);
        // The model forbids same start nodes, so start them adjacent and let
        // agent 2 step onto agent 1 first, then both run EXPLO... simpler:
        // agent 2 waits one round, moves onto node 0, then both execute
        // EXPLO — but they'd be desynchronized. Instead run a solo EXPLO and
        // check min_card == 1.
        engine.add_agent(
            label(1),
            NodeId::new(0),
            Box::new(ProcBehavior::mapping(Explo::new(Arc::clone(&uxs)), |o| {
                Declaration {
                    leader: None,
                    size: Some(o.min_card),
                }
            })),
        );
        engine.add_agent(
            label(2),
            NodeId::new(2),
            Box::new(ProcBehavior::declaring(
                nochatter_sim::proc::WaitRounds::new(0),
            )),
        );
        let outcome = engine.run(100_000).unwrap();
        let rec = outcome.declarations[0].1.unwrap();
        assert_eq!(rec.declaration.size, Some(1), "solo explorer: min card 1");
    }

    #[test]
    fn zero_length_uxs_completes_immediately() {
        let uxs = Arc::new(Uxs::from_steps(vec![]));
        let mut e = Explo::new(uxs);
        let obs = Obs::synthetic(0, 2, 3, None);
        assert_eq!(e.poll(&obs), Poll::Complete(ExploOutcome { min_card: 3 }));
    }
}
