//! Lexicographic enumeration of bounded port sequences.
//!
//! The unknown-upper-bound algorithm repeatedly walks "all paths of length
//! `r` from the set `{0, ..., a-1}`" (paper Algorithms 7 and 10, and our
//! leashed `EST+`). This module provides the enumerator; the walking —
//! forward while ports exist, then backtrack — is done by the procedures
//! themselves, which differ in their waiting and abort rules.

use std::fmt;

/// Iterator over all sequences in `{0..alpha}^len`, in lexicographic order.
///
/// # Example
///
/// ```
/// use nochatter_explore::paths::Paths;
///
/// let mut p = Paths::new(2, 2);
/// let mut all = Vec::new();
/// while let Some(path) = p.next_path() {
///     all.push(path.to_vec());
/// }
/// assert_eq!(all, vec![
///     vec![0, 0], vec![0, 1],
///     vec![1, 0], vec![1, 1],
/// ]);
/// ```
#[derive(Clone)]
pub struct Paths {
    alpha: u32,
    current: Vec<u32>,
    started: bool,
    done: bool,
}

impl Paths {
    /// Enumerates `{0..alpha}^len`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha == 0` (there are no symbols to enumerate) unless
    /// `len == 0` too, in which case the single empty path is produced.
    pub fn new(alpha: u32, len: u32) -> Self {
        assert!(
            alpha > 0 || len == 0,
            "alphabet must be non-empty for positive lengths"
        );
        Paths {
            alpha,
            current: vec![0; len as usize],
            started: false,
            done: false,
        }
    }

    /// The next path, or `None` when exhausted.
    #[allow(clippy::should_implement_trait)]
    pub fn next_path(&mut self) -> Option<&[u32]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.current);
        }
        // Odometer increment, most significant digit first (lexicographic).
        for i in (0..self.current.len()).rev() {
            self.current[i] += 1;
            if self.current[i] < self.alpha {
                return Some(&self.current);
            }
            self.current[i] = 0;
        }
        self.done = true;
        None
    }

    /// Restarts the enumeration from the first path.
    pub fn reset(&mut self) {
        self.current.iter_mut().for_each(|d| *d = 0);
        self.started = false;
        self.done = false;
    }

    /// `alpha^len`, or `None` on overflow.
    pub fn count(alpha: u32, len: u32) -> Option<u64> {
        let mut acc: u64 = 1;
        for _ in 0..len {
            acc = acc.checked_mul(u64::from(alpha))?;
        }
        Some(acc)
    }
}

impl fmt::Debug for Paths {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Paths")
            .field("alpha", &self.alpha)
            .field("len", &self.current.len())
            .field("current", &self.current)
            .field("done", &self.done)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_exactly_alpha_pow_len() {
        for (alpha, len) in [(1u32, 4u32), (2, 3), (3, 2), (4, 1)] {
            let mut p = Paths::new(alpha, len);
            let mut n = 0u64;
            let mut seen = std::collections::HashSet::new();
            while let Some(path) = p.next_path() {
                n += 1;
                assert!(path.iter().all(|&d| d < alpha));
                assert!(seen.insert(path.to_vec()), "duplicate path");
            }
            assert_eq!(Some(n), Paths::count(alpha, len));
        }
    }

    #[test]
    fn lexicographic_order() {
        let mut p = Paths::new(3, 2);
        let mut prev: Option<Vec<u32>> = None;
        while let Some(path) = p.next_path() {
            if let Some(prev) = &prev {
                assert!(prev < &path.to_vec());
            }
            prev = Some(path.to_vec());
        }
    }

    #[test]
    fn zero_length_single_empty_path() {
        let mut p = Paths::new(3, 0);
        assert_eq!(p.next_path(), Some(&[][..]));
        assert_eq!(p.next_path(), None);
        // Even with an empty alphabet.
        let mut p = Paths::new(0, 0);
        assert_eq!(p.next_path(), Some(&[][..]));
        assert_eq!(p.next_path(), None);
    }

    #[test]
    fn reset_restarts() {
        let mut p = Paths::new(2, 2);
        while p.next_path().is_some() {}
        p.reset();
        assert_eq!(p.next_path(), Some(&[0, 0][..]));
    }

    #[test]
    fn count_overflow_is_none() {
        assert_eq!(Paths::count(3, 2), Some(9));
        assert_eq!(Paths::count(2, 64), None);
        assert_eq!(Paths::count(1, 1_000), Some(1));
    }

    #[test]
    #[should_panic(expected = "alphabet must be non-empty")]
    fn zero_alpha_positive_len_panics() {
        Paths::new(0, 3);
    }
}
