//! Integration tests for the unknown-upper-bound algorithm (Theorem 4.1),
//! including the validation of Lemma 4.10 (clean explorations) and the
//! robustness of the clean-exploration shield against an adversarial `EST`
//! reconstruction.

use std::sync::Arc;

use nochatter::core::unknown::{
    run_unknown, ConfigEnumeration, EstMode, ExhaustiveEnumeration, SliceEnumeration,
};
use nochatter::graph::{generators, InitialConfiguration, Label, NodeId};
use nochatter::sim::WakeSchedule;

fn label(v: u64) -> Label {
    Label::new(v).unwrap()
}

fn cfg(graph: nochatter::graph::Graph, agents: &[(u64, u32)]) -> InitialConfiguration {
    InitialConfiguration::new(
        graph,
        agents
            .iter()
            .map(|&(l, v)| (label(l), NodeId::new(v)))
            .collect(),
    )
    .unwrap()
}

fn assert_correct(
    truth: &InitialConfiguration,
    omega: Arc<dyn ConfigEnumeration>,
    mode: EstMode,
    wake: WakeSchedule,
) {
    let (outcome, reports) = run_unknown(truth, omega, mode, wake).expect("run succeeds");
    let report = outcome
        .gathering()
        .unwrap_or_else(|e| panic!("gathering invalid: {e}"));
    assert_eq!(report.leader, Some(truth.smallest_label()));
    assert_eq!(
        report.size,
        Some(truth.size() as u32),
        "Theorem 4.1: the exact size is learned"
    );
    for (_, r) in reports {
        assert!(
            !r.unwrap().est_dirty_observed,
            "Lemma 4.10: explorations reached through the algorithm are clean"
        );
    }
}

#[test]
fn truth_at_various_indices() {
    let truth = cfg(generators::ring(3), &[(1, 0), (2, 1)]);
    let decoy_a = cfg(generators::path(2), &[(1, 0), (2, 1)]);
    let decoy_b = cfg(generators::ring(3), &[(4, 0), (5, 2)]);
    for omega in [
        SliceEnumeration::new(vec![truth.clone()]),
        SliceEnumeration::new(vec![decoy_a.clone(), truth.clone()]),
        SliceEnumeration::new(vec![decoy_a, decoy_b, truth.clone()]),
    ] {
        assert_correct(
            &truth,
            omega,
            EstMode::Conservative,
            WakeSchedule::Simultaneous,
        );
    }
}

#[test]
fn three_agents_on_a_triangle() {
    let truth = cfg(generators::ring(3), &[(3, 0), (5, 1), (9, 2)]);
    let omega = SliceEnumeration::new(vec![truth.clone()]);
    assert_correct(
        &truth,
        omega,
        EstMode::Conservative,
        WakeSchedule::Staggered { gap: 3 },
    );
}

#[test]
fn adversarial_est_is_contained_by_the_clean_exploration_shield() {
    // Even if EST's reconstruction is corrupted whenever cleanliness fails
    // (the adversarial oracle), the full algorithm stays correct: the
    // StarCheck + EnsureCleanExploration + slow-wait machinery guarantees
    // every EST+ reached through the algorithm is clean (Lemma 4.10), so
    // the adversarial branch is provably never exercised. The ablation
    // experiment (a2) shows it *does* fire once the shield is removed.
    let truth = cfg(generators::ring(3), &[(1, 0), (2, 1)]);
    let decoy = cfg(generators::path(2), &[(1, 0), (2, 1)]);
    let omega = SliceEnumeration::new(vec![decoy, truth.clone()]);
    assert_correct(
        &truth,
        omega,
        EstMode::Adversarial,
        WakeSchedule::Simultaneous,
    );
}

#[test]
fn exhaustive_enumeration_contains_and_finds_a_two_node_truth() {
    // The faithful dovetailed enumeration: the true 2-node configuration
    // appears at some index and the algorithm finds it.
    let truth = cfg(generators::path(2), &[(2, 0), (1, 1)]);
    let omega = ExhaustiveEnumeration::new(2, 2);
    // The enumeration holds both orderings of labels {1,2} on the edge.
    assert!(omega.len() >= 2);
    assert_correct(
        &truth,
        omega,
        EstMode::Conservative,
        WakeSchedule::Simultaneous,
    );
}

#[test]
fn time_grows_exponentially_with_hypothesis_index() {
    // The paper's feasibility-only caveat, measured: moving the truth one
    // slot deeper multiplies the round count enormously.
    let truth = cfg(generators::ring(3), &[(1, 0), (2, 1)]);
    let decoy_a = cfg(generators::path(2), &[(1, 0), (2, 1)]);
    let decoy_b = cfg(generators::path(2), &[(3, 0), (4, 1)]);
    let mut rounds = Vec::new();
    for omega in [
        SliceEnumeration::new(vec![truth.clone()]),
        SliceEnumeration::new(vec![decoy_a.clone(), truth.clone()]),
        SliceEnumeration::new(vec![decoy_a, decoy_b, truth.clone()]),
    ] {
        let (outcome, _) = run_unknown(
            &truth,
            omega,
            EstMode::Conservative,
            WakeSchedule::Simultaneous,
        )
        .expect("run succeeds");
        rounds.push(outcome.gathering().unwrap().round);
    }
    // Blow-up measured in practice: ~5x then ~20x per extra decoy (the
    // ratio itself grows — super-exponential in the index, as the nested
    // budgets compound). Assert conservative floors.
    assert!(rounds[1] > 3 * rounds[0], "index 2 ≫ index 1: {rounds:?}");
    assert!(rounds[2] > 10 * rounds[1], "index 3 ≫ index 2: {rounds:?}");
    assert!(rounds[2] > 50 * rounds[0], "compound growth: {rounds:?}");
}

#[test]
fn zero_knowledge_gossip_delivers_everything() {
    // Theorem 5.1, second part: gossiping with no a priori knowledge — the
    // exact size learned by GatherUnknownUpperBound becomes the bound the
    // gossip stage derives its exploration sequence from.
    use nochatter::core::BitStr;

    let truth = cfg(generators::ring(3), &[(1, 0), (2, 1)]);
    let omega = SliceEnumeration::new(vec![truth.clone()]);
    let messages = vec![
        (label(1), BitStr::parse("101").unwrap()),
        (label(2), BitStr::parse("0").unwrap()),
    ];
    let (outcome, reports) = nochatter::core::harness::run_gossip_unknown(
        &truth,
        omega,
        &messages,
        WakeSchedule::Simultaneous,
    )
    .expect("run succeeds");
    outcome.gathering().expect("gathering validates");
    let mut expected: Vec<BitStr> = messages.iter().map(|(_, m)| m.clone()).collect();
    expected.sort();
    for (_, report) in &reports {
        assert_eq!(report.gathering.size, 3, "exact size learned");
        let mut got: Vec<BitStr> = Vec::new();
        for (payload, k) in report.outcome.decoded() {
            for _ in 0..k {
                got.push(payload.clone());
            }
        }
        got.sort();
        assert_eq!(got, expected, "full multiset delivered");
    }
}
