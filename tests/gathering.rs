//! Cross-crate integration tests: the known-upper-bound algorithm over a
//! grid of topologies, team sizes and adversarial wake schedules.
//!
//! These check the paper's Theorem 3.1 end to end: every run must finish
//! with all agents declaring in the same round at the same node, electing
//! the same leader, which is a team member's label.

use nochatter::core::{harness, CommMode, KnownSetup};
use nochatter::graph::{generators, Graph, InitialConfiguration, Label, NodeId};
use nochatter::sim::WakeSchedule;

fn label(v: u64) -> Label {
    Label::new(v).unwrap()
}

/// Spread `k` agents evenly over the graph with the given labels.
fn configure(graph: Graph, labels: &[u64]) -> InitialConfiguration {
    let n = graph.node_count();
    let k = labels.len();
    assert!(k <= n);
    let agents = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| (label(l), NodeId::new((i * n / k) as u32)))
        .collect();
    InitialConfiguration::new(graph, agents).unwrap()
}

/// Runs and validates one instance; returns the declaration round.
fn gather(cfg: &InitialConfiguration, n_upper: u32, schedule: WakeSchedule) -> u64 {
    let setup = KnownSetup::for_configuration(cfg, n_upper, 11);
    let outcome =
        harness::run_known(cfg, &setup, CommMode::Silent, schedule).expect("engine runs cleanly");
    let report = outcome
        .gathering()
        .unwrap_or_else(|e| panic!("invalid gathering: {e}"));
    let leader = report.leader.expect("leader elected");
    assert!(cfg.contains_label(leader), "leader {leader} not in team");
    report.round
}

#[test]
fn sweep_topologies_and_team_sizes() {
    let cases: Vec<(&str, Graph, Vec<u64>)> = vec![
        ("path3", generators::path(3), vec![2, 3]),
        ("ring5", generators::ring(5), vec![4, 7]),
        ("ring6", generators::ring(6), vec![3, 5, 6]),
        ("star5", generators::star(5), vec![1, 2, 3, 4]),
        ("grid32", generators::grid(3, 2), vec![9, 10, 12]),
        ("complete5", generators::complete(5), vec![5, 6, 7]),
        ("tree7", generators::binary_tree(3), vec![2, 11]),
        (
            "rconn8",
            generators::random_connected(8, 4, 3),
            vec![1, 6, 8],
        ),
    ];
    for (name, graph, labels) in cases {
        let cfg = configure(graph, &labels);
        let round = gather(&cfg, cfg.size() as u32 + 2, WakeSchedule::Simultaneous);
        assert!(round > 0, "{name}: trivial round");
    }
}

#[test]
fn all_wake_schedules_agree_on_correctness() {
    let cfg = configure(generators::ring(6), &[3, 5, 9]);
    for schedule in [
        WakeSchedule::Simultaneous,
        WakeSchedule::FirstOnly,
        WakeSchedule::Staggered { gap: 7 },
        WakeSchedule::Explicit(vec![0, 1000, 5]),
    ] {
        gather(&cfg, 8, schedule);
    }
}

#[test]
fn loose_upper_bound_still_works() {
    // N may wildly overestimate the size; only the time changes.
    let cfg = configure(generators::ring(4), &[2, 3]);
    let tight = gather(&cfg, 4, WakeSchedule::Simultaneous);
    let loose = gather(&cfg, 16, WakeSchedule::Simultaneous);
    assert!(
        loose >= tight,
        "a looser bound cannot be faster (tight {tight}, loose {loose})"
    );
}

#[test]
fn adversarial_port_numberings() {
    for seed in 0..4 {
        let g = generators::with_shuffled_ports(&generators::grid(3, 3), seed);
        let cfg = configure(g, &[2, 5, 9]);
        gather(&cfg, 10, WakeSchedule::Simultaneous);
    }
}

#[test]
fn two_agents_worst_case_symmetry() {
    // Diametrically opposite agents on an even ring with identical local
    // views: only the labels break the symmetry.
    for (a, b) in [(1u64, 2u64), (6, 7), (12, 13)] {
        let cfg = InitialConfiguration::new(
            generators::ring(6),
            vec![(label(a), NodeId::new(0)), (label(b), NodeId::new(3))],
        )
        .unwrap();
        gather(&cfg, 6, WakeSchedule::Simultaneous);
    }
}

#[test]
fn longer_labels_cost_more_phases() {
    let short = {
        let cfg = configure(generators::ring(4), &[1, 2]);
        gather(&cfg, 4, WakeSchedule::Simultaneous)
    };
    let long = {
        let cfg = configure(generators::ring(4), &[33, 47]);
        gather(&cfg, 4, WakeSchedule::Simultaneous)
    };
    assert!(
        long > short,
        "6-bit labels ({long}) must need more rounds than 1-2 bit ones ({short})"
    );
}

#[test]
fn talking_baseline_matches_on_correctness_and_wins_on_speed() {
    let cfg = configure(generators::grid(3, 2), &[3, 5, 11]);
    let setup = KnownSetup::for_configuration(&cfg, 8, 11);
    let silent = harness::run_known(&cfg, &setup, CommMode::Silent, WakeSchedule::Simultaneous)
        .unwrap()
        .gathering()
        .unwrap();
    let talking = harness::run_known(&cfg, &setup, CommMode::Talking, WakeSchedule::Simultaneous)
        .unwrap()
        .gathering()
        .unwrap();
    assert!(cfg.contains_label(silent.leader.unwrap()));
    assert!(cfg.contains_label(talking.leader.unwrap()));
    assert!(
        silent.round > talking.round,
        "movement-encoded communication must cost extra rounds"
    );
}

#[test]
fn max_team_on_small_graph() {
    // k = n: every node hosts an agent.
    let cfg = configure(generators::ring(4), &[1, 2, 3, 4]);
    gather(&cfg, 4, WakeSchedule::FirstOnly);
}
