//! Differential testing: the silent (weak-sensing) algorithm against the
//! talking (traditional-sensing) baseline on *identical* configurations,
//! driven through the `nochatter-lab` campaign runner.
//!
//! The paper's central claim (Theorem 3.1) is that giving up all
//! communication costs only a polynomial overhead: on every instance the
//! silent algorithm still gathers, and always within the paper's
//! polynomial round bound. Note what the claim does *not* say: silence is
//! not slower on every single instance. Compressing the movement-encoded
//! `Communicate` term to zero rounds (the talking baseline) shifts the
//! phase alignment between agents, so the two executions diverge after
//! their first meeting and occasionally the talking run needs *more*
//! phases before the decisive meeting (observed on lollipops and random
//! families at n=6). The overhead claim is a worst-case envelope, and
//! that's what this suite pins: every cell gathers, every silent run stays
//! inside the envelope, the per-instance ratio is bounded in both
//! directions, and in aggregate silence does cost rounds.

use nochatter::core::{CommMode, KnownSetup};
use nochatter::graph::generators::Family;
use nochatter::sim::WakeSchedule;
use nochatter_lab::{run_campaign, CampaignReport, Matrix};

/// Silent and talking runs of every family × size × schedule cell. Seeds
/// derive from the mode-independent instance sub-key, so each silent cell
/// and its talking twin run on the identical graph and exploration setup.
fn differential_report() -> (CampaignReport, nochatter_lab::Campaign) {
    let campaign = Matrix {
        families: Family::all().to_vec(),
        sizes: vec![4, 6],
        teams: vec![vec![2, 3], vec![3, 5, 9]],
        schedules: vec![WakeSchedule::Simultaneous, WakeSchedule::FirstOnly],
        modes: vec![CommMode::Silent, CommMode::Talking],
        ..Matrix::new()
    }
    .campaign("differential", 77)
    .expect("differential matrix is well-formed");
    let report = run_campaign(&campaign, 0);
    (report, campaign)
}

#[test]
fn both_models_gather_on_every_family() {
    let (report, _) = differential_report();
    assert!(report.records.len() >= 2 * Family::all().len());
    for r in &report.records {
        assert!(r.ok, "{} failed to gather: {}", r.key, r.status);
        assert!(r.leader.is_some(), "{} elected no leader", r.key);
    }
}

#[test]
fn silence_costs_rounds_in_aggregate() {
    let (report, _) = differential_report();
    let pairs = report.mode_pairs("silent", "talking");
    let mut inverted = 0usize;
    let mut ratio_sum = 0.0f64;
    for (silent, talking) in &pairs {
        let ratio = silent.rounds as f64 / talking.rounds as f64;
        ratio_sum += ratio;
        inverted += usize::from(silent.rounds < talking.rounds);
        // The two runs really are different executions, not one code path
        // measured twice.
        assert_ne!(
            silent.trace_digest, talking.trace_digest,
            "{}: silent and talking traces are identical",
            silent.key
        );
    }
    let mean = ratio_sum / pairs.len() as f64;
    assert!(
        mean >= 1.05,
        "mean silent/talking ratio {mean:.3} — silence has become free, \
         which means the Communicate term is no longer being paid"
    );
    // Per-instance inversions exist (phase-alignment divergence) but must
    // stay the exception; a majority would mean the baseline is broken.
    assert!(
        inverted * 5 <= pairs.len(),
        "{inverted}/{} pairs have silent faster than talking",
        pairs.len()
    );
}

#[test]
fn silent_rounds_stay_inside_the_papers_envelope() {
    let (report, campaign) = differential_report();
    for r in report.records.iter().filter(|r| r.key.mode == "silent") {
        let scenario = campaign
            .scenarios()
            .iter()
            .find(|s| s.key == r.key)
            .expect("record has a scenario");
        // Theorem 3.1's bound, as computed by the implementation: the
        // per-phase durations summed over the phase bound. `run_scenario`
        // enforces it as the engine round limit, so also assert the run
        // finished by declaration rather than by hitting the limit.
        let envelope =
            KnownSetup::for_configuration(&scenario.cfg, scenario.cfg.size() as u32, scenario.seed)
                .params()
                .round_limit(scenario.cfg.smallest_label_bit_len());
        assert!(
            r.rounds <= envelope,
            "{}: {} rounds exceeds the polynomial envelope {}",
            r.key,
            r.rounds,
            envelope
        );
        assert_eq!(r.status, "gathered", "{}: {}", r.key, r.status);
    }
}

#[test]
fn overhead_ratio_is_uniformly_bounded_at_these_sizes() {
    // At fixed small sizes the polynomial overhead collapses to a modest
    // constant factor (T5's observation). Pin a generous two-sided ceiling
    // so a regression that blows up the Communicate term — or one that
    // makes the talking baseline pathologically slow — fails loudly rather
    // than silently shifting recorded tables.
    let (report, _) = differential_report();
    for (silent, talking) in report.mode_pairs("silent", "talking") {
        let ratio = silent.rounds as f64 / talking.rounds as f64;
        assert!(
            (0.125..=16.0).contains(&ratio),
            "{}: silent/talking ratio {ratio:.2} out of envelope \
             (silent {} vs talking {})",
            silent.key,
            silent.rounds,
            talking.rounds
        );
    }
}
