//! Smoke tests: the examples and benches must always *compile*, even
//! though CI never runs the full (slow) benchmark suite. Invokes the same
//! cargo that is running this test, against the same target directory, so
//! in CI these are mostly-cached incremental builds.
//!
//! Set `NOCHATTER_SKIP_SMOKE=1` to skip (e.g. on machines where rebuild
//! time matters more than this coverage).

use std::process::Command;

fn cargo(args: &[&str]) {
    if std::env::var_os("NOCHATTER_SKIP_SMOKE").is_some() {
        eprintln!(
            "NOCHATTER_SKIP_SMOKE set; skipping `cargo {}`",
            args.join(" ")
        );
        return;
    }
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args(args)
        .current_dir(manifest_dir)
        .output()
        .expect("cargo spawns");
    assert!(
        output.status.success(),
        "`cargo {}` failed:\n--- stdout\n{}\n--- stderr\n{}",
        args.join(" "),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn examples_compile() {
    cargo(&["build", "--examples"]);
}

#[test]
fn benches_compile() {
    cargo(&["bench", "--no-run"]);
}
