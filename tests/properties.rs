//! Property-based tests: randomized instances of the paper's theorems.
//!
//! Each property runs the full algorithm on a randomly drawn configuration
//! and asserts the correctness conditions; shrinking produces the smallest
//! failing instance if an invariant ever breaks.

use proptest::prelude::*;

use nochatter::core::{harness, BitStr, CommMode, KnownSetup};
use nochatter::explore::Uxs;
use nochatter::graph::{generators, Graph, InitialConfiguration, Label, NodeId};
use nochatter::sim::WakeSchedule;

fn label(v: u64) -> Label {
    Label::new(v).unwrap()
}

/// A random small connected graph.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (3u32..9, 0u32..5, any::<u64>(), 0usize..4).prop_map(|(n, extra, seed, family)| match family {
        0 => generators::ring(n.max(3)),
        1 => generators::random_tree(n, seed),
        2 => generators::random_connected(n, extra, seed),
        _ => generators::with_shuffled_ports(
            &generators::random_connected(n, extra, seed),
            seed ^ 0xABCD,
        ),
    })
}

/// A random team: distinct labels on distinct nodes.
fn team_strategy() -> impl Strategy<Value = (Graph, Vec<(Label, NodeId)>, u64)> {
    (graph_strategy(), any::<u64>()).prop_flat_map(|(g, seed)| {
        let n = g.node_count();
        (2usize..=n.min(4), Just(g), Just(seed)).prop_flat_map(|(k, g, seed)| {
            (
                proptest::collection::hash_set(1u64..32, k),
                Just(g),
                Just(seed),
                Just(k),
            )
                .prop_filter("need k distinct labels", |(labels, _, _, k)| {
                    labels.len() == *k
                })
                .prop_map(|(labels, g, seed, _)| {
                    // Place agents deterministically from the seed.
                    let mut rng = nochatter::graph::rng::Rng::seed_from(seed);
                    let mut nodes: Vec<u32> = (0..g.node_count() as u32).collect();
                    rng.shuffle(&mut nodes);
                    let agents = labels
                        .into_iter()
                        .zip(&nodes)
                        .map(|(l, &v)| (label(l), NodeId::new(v)))
                        .collect();
                    (g, agents, seed)
                })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a full multi-thousand-round simulation
        .. ProptestConfig::default()
    })]

    /// Theorem 3.1: gathering + leader election succeed on random instances
    /// with random wake schedules.
    #[test]
    fn gathering_is_always_correct((g, agents, seed) in team_strategy(), gap in 0u64..50) {
        let cfg = InitialConfiguration::new(g, agents).unwrap();
        let setup = KnownSetup::for_configuration(&cfg, cfg.size() as u32, seed);
        let schedule = if gap == 0 {
            WakeSchedule::Simultaneous
        } else {
            WakeSchedule::Staggered { gap }
        };
        let outcome = harness::run_known(&cfg, &setup, CommMode::Silent, schedule)
            .expect("engine runs cleanly");
        let report = outcome.gathering().expect("gathering must validate");
        let leader = report.leader.expect("leader elected");
        prop_assert!(cfg.contains_label(leader));
    }

    /// Proposition 2.1 as a property: code is even-length, self-terminating
    /// and prefix-free over random strings.
    #[test]
    fn codec_proposition(bits_a in proptest::collection::vec(any::<bool>(), 0..24),
                         bits_b in proptest::collection::vec(any::<bool>(), 0..24)) {
        let a = BitStr::from_bits(bits_a);
        let b = BitStr::from_bits(bits_b);
        let ca = a.code();
        let cb = b.code();
        prop_assert_eq!(ca.len() % 2, 0);
        prop_assert_eq!(ca.decode(), Some(a.clone()));
        if a != b {
            prop_assert!(!ca.is_prefix_of(&cb));
            prop_assert!(!cb.is_prefix_of(&ca));
        }
        // The unique odd-position 01 is at the very end.
        let mut z = 1;
        while z < ca.len() {
            let is_01 = !ca.bit(z) && ca.bit(z + 1);
            prop_assert_eq!(is_01, z + 1 == ca.len());
            z += 2;
        }
    }

    /// Certified exploration sequences cover what they certify, from every
    /// start node.
    #[test]
    fn uxs_certification_is_sound(n in 3u32..10, extra in 0u32..6, seed in any::<u64>()) {
        let g = generators::random_connected(n, extra, seed);
        let uxs = Uxs::covering(std::slice::from_ref(&g), seed).unwrap();
        for start in g.nodes() {
            prop_assert!(uxs.covers(&g, start));
        }
    }

    /// Theorem 5.1 on random instances: gossip delivers the exact multiset
    /// of payloads to every agent.
    #[test]
    fn gossip_delivers_everything(
        (g, agents, seed) in team_strategy(),
        payload_bits in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 0..6), 4)
    ) {
        let cfg = InitialConfiguration::new(g, agents).unwrap();
        let setup = KnownSetup::for_configuration(&cfg, cfg.size() as u32, seed);
        let messages: Vec<(Label, BitStr)> = cfg
            .agents()
            .iter()
            .zip(payload_bits.iter().cycle())
            .map(|(&(l, _), bits)| (l, BitStr::from_bits(bits.clone())))
            .collect();
        let reports = harness::run_gossip(
            &cfg,
            &setup,
            CommMode::Silent,
            &messages,
            WakeSchedule::Simultaneous,
        )
        .expect("gossip runs");
        let mut expected: Vec<BitStr> = messages.iter().map(|(_, m)| m.clone()).collect();
        expected.sort();
        for (_, report) in &reports {
            let mut got: Vec<BitStr> = Vec::new();
            for (payload, kk) in report.outcome.decoded() {
                for _ in 0..kk {
                    got.push(payload.clone());
                }
            }
            got.sort();
            prop_assert_eq!(&got, &expected);
        }
    }
}
