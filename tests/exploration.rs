//! Property-based coverage of the two exploration-layer guarantees the
//! gathering proofs consume: `EXPLO(N)` universality (the certified
//! sequence visits every node of *any* graph in its size class, §2) and
//! `TZ(L)` schedule separation (distinct parameters yield schedules that
//! differ within the prefix-free-code horizon, §2).

use std::sync::Arc;

use proptest::prelude::*;

use nochatter::explore::{Explo, Uxs};
use nochatter::graph::{generators, Label, NodeId};
use nochatter::rendezvous::ActivitySchedule;
use nochatter::sim::proc::ProcBehavior;
use nochatter::sim::{Engine, WakeSchedule};

/// The size class the exhaustive sequence is certified for. Kept small:
/// the certification corpus is *every* connected port-labeled graph of
/// size `2..=N`, which grows very quickly.
const N: u32 = 4;

fn exhaustive_uxs() -> &'static Arc<Uxs> {
    use std::sync::OnceLock;
    static UXS: OnceLock<Arc<Uxs>> = OnceLock::new();
    UXS.get_or_init(|| Arc::new(Uxs::exhaustive_universal(N, 7)))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// EXPLO(N) universality: the exhaustively certified sequence covers
    /// every node of random connected graphs with `n <= N` — graphs drawn
    /// independently of the certification corpus — from every start node.
    #[test]
    fn explo_universal_on_random_graphs(
        n in 2u32..=N,
        extra in 0u32..4,
        seed in any::<u64>(),
        shuffle in any::<bool>(),
    ) {
        let mut g = generators::random_connected(n, extra, seed);
        if shuffle {
            // Port re-numbering must not defeat universality: the class is
            // closed under it.
            g = generators::with_shuffled_ports(&g, seed ^ 0x5A5A);
        }
        let uxs = exhaustive_uxs();
        for start in g.nodes() {
            prop_assert!(
                uxs.covers(&g, start),
                "EXPLO({N}) missed a node of an n={} graph from start {start}",
                g.node_count()
            );
        }
    }

    /// The engine-level contract: an agent executing `EXPLO` visits every
    /// node and is back at its start node after exactly `T(EXPLO)` rounds.
    #[test]
    fn explo_returns_to_start(n in 2u32..=N, extra in 0u32..3, seed in any::<u64>()) {
        let g = generators::random_connected(n, extra, seed);
        let uxs = exhaustive_uxs();
        let start = NodeId::new((seed % u64::from(g.node_count() as u32)) as u32);
        let walk = uxs.walk(&g, start);
        prop_assert_eq!(walk[0], start);
        // Engine check: run to completion, confirm duration.
        let mut engine = Engine::new(&g);
        engine.add_agent(
            Label::new(1).unwrap(),
            start,
            Box::new(ProcBehavior::declaring(Explo::new(Arc::clone(uxs)))),
        );
        engine.set_wake_schedule(WakeSchedule::Simultaneous);
        let outcome = engine.run(Explo::duration(uxs.as_ref()) + 2).expect("engine runs");
        prop_assert!(outcome.all_declared(), "EXPLO must terminate in T(EXPLO) rounds");
        let record = outcome.declarations[0].1.expect("agent declared");
        prop_assert_eq!(
            record.node,
            start,
            "the backtrack half must return the agent to its start node, not {}",
            record.node
        );
    }

    /// TZ(L) separation: schedules of distinct parameters differ in some
    /// block within the smaller parameter's encoded prefix (`2ℓ+2` blocks)
    /// — the property Algorithm 3's meeting argument rests on.
    #[test]
    fn tz_schedules_differ_for_distinct_labels(a in 1u64..4096, b in 1u64..4096) {
        prop_assume!(a != b);
        let sa = ActivitySchedule::for_param(a);
        let sb = ActivitySchedule::for_param(b);
        let diff = sa.first_difference(&sb);
        prop_assert!(diff.is_some(), "schedules of {a} and {b} must differ");
        let min_bits = (64 - a.leading_zeros()).min(64 - b.leading_zeros()) as usize;
        prop_assert!(
            diff.unwrap() < 2 * min_bits + 2,
            "params {a},{b}: difference at block {} outside the 2ℓ+2 horizon {}",
            diff.unwrap(),
            2 * min_bits + 2
        );
    }

    /// Equal parameters produce identical schedules — symmetric groups must
    /// stay lock-stepped until the algorithm breaks symmetry elsewhere.
    #[test]
    fn tz_schedules_agree_for_equal_labels(a in 0u64..4096, horizon in 1usize..64) {
        let sa = ActivitySchedule::for_param(a);
        let sb = ActivitySchedule::for_param(a);
        prop_assert_eq!(sa.first_difference(&sb), None);
        for block in 0..horizon {
            prop_assert_eq!(sa.is_active(block), sb.is_active(block));
        }
    }
}
