//! Substrate-level integration tests: the model semantics the paper's
//! proofs lean on, exercised through the public API across crates.

use std::sync::Arc;

use nochatter::explore::{Explo, Uxs};
use nochatter::graph::{generators, Label, NodeId, Port};
use nochatter::rendezvous::{meeting_bound, Tz};
use nochatter::sim::proc::{ProcBehavior, Procedure, RunFor, UntilCardExceeds, WaitRounds};
use nochatter::sim::{
    Action, AgentAct, AgentBehavior, Declaration, Engine, Obs, Poll, WakeSchedule,
};

fn label(v: u64) -> Label {
    Label::new(v).unwrap()
}

#[test]
fn entry_port_persists_across_waits() {
    // "When an agent enters a node, it learns its degree and the port of
    // entry" — and keeps that knowledge while waiting.
    struct MoveWaitCheck {
        step: u32,
    }
    impl Procedure for MoveWaitCheck {
        type Output = ();
        fn poll(&mut self, obs: &Obs) -> Poll<()> {
            self.step += 1;
            match self.step {
                1 => {
                    assert_eq!(obs.entry_port, None, "never moved yet");
                    Poll::Yield(Action::TakePort(Port::new(1)))
                }
                2..=5 => {
                    assert_eq!(
                        obs.entry_port,
                        Some(Port::new(0)),
                        "entry port must persist through waits (step {})",
                        self.step
                    );
                    Poll::Yield(Action::Wait)
                }
                _ => Poll::Complete(()),
            }
        }
    }
    let g = generators::ring(4);
    let mut engine = Engine::new(&g);
    engine.add_agent(
        label(1),
        NodeId::new(0),
        Box::new(ProcBehavior::declaring(MoveWaitCheck { step: 0 })),
    );
    engine.add_agent(
        label(2),
        NodeId::new(2),
        Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
    );
    engine.run(100).unwrap();
}

#[test]
fn just_woken_fires_exactly_once() {
    struct CountWokenFlags {
        woken_obs: u32,
        polls: u32,
    }
    impl AgentBehavior for CountWokenFlags {
        fn on_round(&mut self, obs: &Obs) -> AgentAct {
            self.polls += 1;
            if obs.just_woken {
                self.woken_obs += 1;
            }
            if self.polls >= 5 {
                assert_eq!(self.woken_obs, 1, "just_woken must fire exactly once");
                AgentAct::Declare(Declaration::bare())
            } else {
                AgentAct::Wait
            }
        }
    }
    let g = generators::path(3);
    let mut engine = Engine::new(&g);
    for (l, v) in [(1u64, 0u32), (2, 2)] {
        engine.add_agent(
            label(l),
            NodeId::new(v),
            Box::new(CountWokenFlags {
                woken_obs: 0,
                polls: 0,
            }),
        );
    }
    engine.set_wake_schedule(WakeSchedule::Staggered { gap: 3 });
    let outcome = engine.run(100).unwrap();
    assert!(outcome.all_declared());
}

#[test]
fn fast_forward_preserves_exact_semantics() {
    // The same scenario must produce identical declarations whether the
    // waits are walked round by round (procedures that promise nothing) or
    // fast-forwarded (WaitRounds with its min_wait hint).
    struct OpaqueWait {
        left: u64,
    }
    impl Procedure for OpaqueWait {
        type Output = ();
        fn poll(&mut self, _obs: &Obs) -> Poll<()> {
            if self.left == 0 {
                Poll::Complete(())
            } else {
                self.left -= 1;
                Poll::Yield(Action::Wait)
            }
        }
        // Deliberately no min_wait: forces the slow path.
    }
    let run = |fast: bool| {
        let g = generators::ring(5);
        let mut engine = Engine::new(&g);
        for (i, (l, v)) in [(3u64, 0u32), (4, 2)].into_iter().enumerate() {
            let rounds = 5000 + i as u64 * 37;
            let behavior: Box<dyn AgentBehavior> = if fast {
                Box::new(ProcBehavior::declaring(WaitRounds::new(rounds)))
            } else {
                Box::new(ProcBehavior::declaring(OpaqueWait { left: rounds }))
            };
            engine.add_agent(label(l), NodeId::new(v), behavior);
        }
        engine.run(100_000).unwrap()
    };
    let slow = run(false);
    let fast = run(true);
    assert!(fast.skipped_rounds > 0, "hints must enable skipping");
    assert_eq!(slow.skipped_rounds, 0, "no hints, no skipping");
    for (s, f) in slow.declarations.iter().zip(&fast.declarations) {
        assert_eq!(s.1.unwrap().round, f.1.unwrap().round);
        assert_eq!(s.1.unwrap().node, f.1.unwrap().node);
    }
    assert!(fast.engine_iterations < slow.engine_iterations / 10);
}

#[test]
fn tz_inside_runfor_is_interruptible_and_bounded() {
    // The exact composition Algorithm 3 uses: TZ wrapped in RunFor wrapped
    // in the cardinality interrupt. Two distinct labels must meet within
    // the meeting bound; the RunFor cap must stop TZ(0) pairs.
    let g = generators::ring(6);
    let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 5).unwrap());
    let bound = meeting_bound(&uxs, 3);
    let run = |params: (u64, u64)| {
        let mut engine = Engine::new(&g);
        for (l, v, p) in [(1u64, 0u32, params.0), (2, 3, params.1)] {
            engine.add_agent(
                label(l),
                NodeId::new(v),
                Box::new(ProcBehavior::declaring(UntilCardExceeds::new(
                    1,
                    RunFor::new(bound, Tz::new(p, Arc::clone(&uxs))),
                ))),
            );
        }
        engine.run(10 * bound).unwrap()
    };
    // Distinct parameters: both declare (they met) before the cap.
    let met = run((5, 6));
    assert!(met.all_declared());
    assert!(met.gathering().unwrap().round <= bound);
    // Both passive (sentinel 0): no meeting, but RunFor caps the execution
    // and both complete exactly at the bound.
    let capped = run((0, 0));
    assert!(capped.all_declared());
    let rounds: Vec<u64> = capped
        .declarations
        .iter()
        .map(|(_, r)| r.unwrap().round)
        .collect();
    assert_eq!(rounds, vec![bound, bound]);
    // And they never met.
    assert!(capped.gathering().is_err() || capped.max_colocation == 1);
}

#[test]
fn explo_on_adversarial_ports_still_covers() {
    // Certification is against the *shuffled* graph, so coverage must hold
    // under any port renumbering.
    for seed in 0..5 {
        let g = generators::with_shuffled_ports(&generators::lollipop(4, 3), seed);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), seed).unwrap());
        for start in g.nodes() {
            assert!(uxs.covers(&g, start), "seed {seed} start {start}");
        }
        // And the in-engine execution terminates at the start node.
        let mut engine = Engine::new(&g);
        engine.add_agent(
            label(1),
            NodeId::new(2),
            Box::new(ProcBehavior::declaring(Explo::new(Arc::clone(&uxs)))),
        );
        engine.add_agent(
            label(2),
            NodeId::new(0),
            Box::new(ProcBehavior::declaring(WaitRounds::new(0))),
        );
        let outcome = engine.run(1_000_000).unwrap();
        assert_eq!(outcome.declarations[0].1.unwrap().node, NodeId::new(2));
    }
}

#[test]
fn declared_agents_still_count_toward_curcard() {
    // A declared agent remains physically present: its body still raises
    // CurCard for agents passing through — the paper's counters count
    // agents, not running programs.
    struct SenseNeighbor {
        moved: bool,
    }
    impl Procedure for SenseNeighbor {
        type Output = u32;
        fn poll(&mut self, obs: &Obs) -> Poll<u32> {
            if !self.moved {
                self.moved = true;
                return Poll::Yield(Action::TakePort(Port::new(0)));
            }
            Poll::Complete(obs.cur_card)
        }
    }
    let g = generators::path(2);
    let mut engine = Engine::new(&g);
    engine.add_agent(
        label(1),
        NodeId::new(0),
        Box::new(ProcBehavior::declaring(WaitRounds::new(0))), // declares at once
    );
    engine.add_agent(
        label(2),
        NodeId::new(1),
        Box::new(ProcBehavior::mapping(SenseNeighbor { moved: false }, |c| {
            Declaration {
                leader: None,
                size: Some(c),
            }
        })),
    );
    let outcome = engine.run(100).unwrap();
    assert_eq!(
        outcome.declarations[1].1.unwrap().declaration.size,
        Some(2),
        "the declared agent must still be counted"
    );
}
