//! Property-based tests of the two substrate *contracts* the paper's
//! correctness proofs consume: the `Communicate` return value (Lemma 3.1)
//! and the `TZ` meeting bound (the `P(N, ℓ)` polynomial). These are the
//! load-bearing interfaces between the substrate crates and the core
//! algorithms, so they get their own randomized coverage beyond the
//! example-based unit tests.

use std::sync::Arc;

use proptest::prelude::*;

use nochatter::core::{BitStr, Communicate};
use nochatter::explore::Uxs;
use nochatter::graph::{generators, Label, NodeId, Port};
use nochatter::rendezvous::{meeting_bound, Tz};
use nochatter::sim::proc::{ProcBehavior, Procedure, UntilCardExceeds};
use nochatter::sim::{
    Action, AgentAct, AgentBehavior, Declaration, Engine, Obs, Poll, WakeSchedule,
};

fn label(v: u64) -> Label {
    Label::new(v).unwrap()
}

/// One hub-meeting Communicate participant (walks one step to the star
/// center first).
struct Member {
    comm: Communicate,
    moved: bool,
    done: bool,
}

impl AgentBehavior for Member {
    fn on_round(&mut self, obs: &Obs) -> AgentAct {
        if self.done {
            return AgentAct::Wait;
        }
        if !self.moved {
            self.moved = true;
            return AgentAct::TakePort(Port::new(0));
        }
        match self.comm.poll(obs) {
            Poll::Yield(Action::Wait) => AgentAct::Wait,
            Poll::Yield(Action::TakePort(p)) => AgentAct::TakePort(p),
            Poll::Complete(out) => {
                self.done = true;
                AgentAct::Declare(Declaration {
                    leader: out.l.extract_terminated_code().and_then(|d| d.to_label()),
                    size: Some(out.k),
                })
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// Lemma 3.1 over random label multisets and participation flags: every
    /// member receives the lexicographically smallest *participating* code
    /// (or all-ones), with the exact multiplicity, in the same round.
    #[test]
    fn communicate_contract(
        labels in proptest::collection::btree_set(1u64..64, 2..5),
        bools in proptest::collection::vec(any::<bool>(), 4),
    ) {
        let labels: Vec<u64> = labels.into_iter().collect();
        let bools: Vec<bool> = bools[..labels.len()].to_vec();
        let i = labels
            .iter()
            .map(|&l| 2 * (64 - l.leading_zeros()) + 2)
            .max()
            .unwrap();
        let g = generators::star(labels.len() as u32 + 1);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 7).unwrap());
        let mut engine = Engine::new(&g);
        for (idx, (&l, &b)) in labels.iter().zip(&bools).enumerate() {
            engine.add_agent(
                label(l),
                NodeId::new(idx as u32 + 1),
                Box::new(Member {
                    comm: Communicate::new(
                        i,
                        BitStr::from_label(label(l)).code(),
                        b,
                        Arc::clone(&uxs),
                    ),
                    moved: false,
                    done: false,
                }),
            );
        }
        let outcome = engine.run(100_000_000).unwrap();
        prop_assert!(outcome.all_declared());

        // Expected winner among participants.
        let participating: Vec<u64> = labels
            .iter()
            .zip(&bools)
            .filter(|&(_, &b)| b)
            .map(|(&l, _)| l)
            .collect();
        let expected = participating
            .iter()
            .map(|&l| (BitStr::from_label(label(l)).code(), l))
            .min();
        let rounds: Vec<u64> = outcome
            .declarations
            .iter()
            .map(|(_, r)| r.unwrap().round)
            .collect();
        prop_assert!(rounds.windows(2).all(|w| w[0] == w[1]), "lockstep");
        for (_, rec) in &outcome.declarations {
            let d = rec.unwrap().declaration;
            match &expected {
                Some((code, winner)) => {
                    prop_assert_eq!(d.leader, Some(label(*winner)));
                    let k = participating
                        .iter()
                        .filter(|&&l| &BitStr::from_label(label(l)).code() == code)
                        .count() as u32;
                    prop_assert_eq!(d.size, Some(k));
                }
                None => {
                    prop_assert_eq!(d.leader, None, "nobody participated");
                }
            }
        }
    }

    /// The TZ meeting bound over random rings, placements, labels and start
    /// offsets up to T/2 — the exact contract Algorithm 3's analysis uses.
    #[test]
    fn tz_meeting_bound_holds(
        n in 4u32..10,
        gap in 1u32..5,
        a in 1u64..32,
        b in 1u64..32,
        offset_frac in 0u64..3,
    ) {
        prop_assume!(a != b);
        let g = generators::ring(n);
        let uxs = Arc::new(Uxs::covering(std::slice::from_ref(&g), 13).unwrap());
        let t = 2 * uxs.len() as u64;
        let offset = t * offset_frac / 4; // 0, T/4, T/2
        let min_bits = (64 - a.leading_zeros()).min(64 - b.leading_zeros());
        let bound = meeting_bound(&uxs, min_bits);
        let mut engine = Engine::new(&g);
        for (l, start, p) in [(1u64, 0u32, a), (2, gap.min(n - 1), b)] {
            engine.add_agent(
                label(l),
                NodeId::new(start),
                Box::new(ProcBehavior::declaring(UntilCardExceeds::new(
                    1,
                    Tz::new(p, Arc::clone(&uxs)),
                ))),
            );
        }
        engine.set_wake_schedule(WakeSchedule::Explicit(vec![0, offset]));
        let outcome = engine.run(offset + bound + 1).unwrap();
        prop_assert!(outcome.all_declared(), "agents must meet within the bound");
        let report = outcome.gathering().expect("met at one node");
        prop_assert!(report.round <= offset + bound);
    }
}
