//! Quickstart: three silent agents gather on a ring and elect a leader.
//!
//! Run with: `cargo run --release --example quickstart`

use nochatter::core::{harness, CommMode, KnownSetup};
use nochatter::graph::{generators, InitialConfiguration, Label, NodeId};
use nochatter::sim::WakeSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An anonymous 6-node ring. Agents know only an upper bound (8) on its
    // size — not the topology, not each other's labels, not even how many
    // they are.
    let cfg = InitialConfiguration::new(
        generators::ring(6),
        vec![
            (Label::new(5).ok_or("label")?, NodeId::new(0)),
            (Label::new(9).ok_or("label")?, NodeId::new(2)),
            (Label::new(12).ok_or("label")?, NodeId::new(5)),
        ],
    )?;

    // Derive the shared exploration sequence (the EXPLO(N) substrate) and
    // all timing constants from the upper bound.
    let setup = KnownSetup::for_configuration(&cfg, 8, 42);

    // The adversary wakes only one agent; the others sleep until an
    // exploration passes through their node.
    let outcome = harness::run_known(&cfg, &setup, CommMode::Silent, WakeSchedule::FirstOnly)?;

    // The paper's correctness conditions, checked: all agents declared in
    // the same round, at the same node, with the same elected leader.
    let report = outcome.gathering()?;
    println!("gathering declared in round {}", report.round);
    println!("meeting node: {}", report.node);
    println!(
        "elected leader: agent {}",
        report.leader.expect("algorithm elects a leader")
    );
    println!(
        "total moves: {}, max co-location: {}",
        outcome.total_moves, outcome.max_colocation
    );
    Ok(())
}
