//! Search-and-rescue gossip: robots in a contaminated mine pool their
//! sensor readings without any radio.
//!
//! The paper's motivating scenario (§1.1): mobile robots move along the
//! corridors of a mine that is not accessible to humans. Each robot has
//! collected a sample — here, a small binary sensor report — and every
//! robot must end up knowing *all* reports. Radios do not work underground;
//! the only thing a robot can sense is how many robots share its junction
//! (a counter at each node). The gossiping algorithm of Theorem 5.1 solves
//! this: gather silently, then exchange every message through choreographed
//! movement.
//!
//! Run with: `cargo run --release --example mine_rescue`

use nochatter::core::{harness, BitStr, CommMode, KnownSetup};
use nochatter::graph::{generators, InitialConfiguration, Label, NodeId};
use nochatter::sim::WakeSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The mine: a 3×3 grid of corridors with a few collapsed passages —
    // modeled as a random connected graph over 9 junctions.
    let mine = generators::random_connected(9, 4, 0xC0FFEE);

    // Four robots with factory serial numbers, parked at different
    // junctions after the survey shift.
    let robots = vec![
        (Label::new(19).ok_or("label")?, NodeId::new(0)),
        (Label::new(7).ok_or("label")?, NodeId::new(3)),
        (Label::new(22).ok_or("label")?, NodeId::new(6)),
        (Label::new(4).ok_or("label")?, NodeId::new(8)),
    ];
    let cfg = InitialConfiguration::new(mine, robots)?;

    // Each robot's sensor report (binary payloads; two robots happen to
    // have measured the same thing).
    let reports = vec![
        (Label::new(19).unwrap(), BitStr::parse("10110").unwrap()), // gas pocket
        (Label::new(7).unwrap(), BitStr::parse("001").unwrap()),    // clear
        (Label::new(22).unwrap(), BitStr::parse("001").unwrap()),   // clear
        (Label::new(4).unwrap(), BitStr::parse("111000").unwrap()), // flooding
    ];

    let setup = KnownSetup::for_configuration(&cfg, 12, 7);
    let (outcome, transcripts) = harness::run_gossip_outcome(
        &cfg,
        &setup,
        CommMode::Silent,
        &reports,
        WakeSchedule::Staggered { gap: 23 },
    )?;

    let gathering = outcome.gathering()?;
    println!(
        "rendezvous at junction {} in round {} (leader: robot {})",
        gathering.node,
        gathering.round,
        gathering.leader.unwrap()
    );

    // Every robot must have learned the full multiset of reports.
    for (robot, report) in &transcripts {
        println!("robot {robot} learned:");
        for (payload, copies) in report.outcome.decoded() {
            println!("  report {payload} ({copies} robot(s))");
        }
        assert_eq!(
            report.outcome.delivered_count(),
            4,
            "all four reports accounted for"
        );
    }
    println!("total rounds: {}", outcome.rounds);
    Ok(())
}
