//! The price of silence: the paper's weak model vs. the traditional one,
//! measured as a scenario campaign.
//!
//! Declares a small campaign matrix — three topologies × two sizes, each
//! instance run once in the weak model (agents sense only `CurCard` and
//! communicate by movement) and once in the traditional model (co-located
//! agents exchange labels instantly) — executes it on a worker pool, and
//! reports how many rounds the silence costs per cell. The only difference
//! between the paired runs is whether the `Communicate` step of each phase
//! is movement-encoded (`5i·T(EXPLO(N))` rounds) or free.
//!
//! Run with: `cargo run --release --example silent_vs_talking`

use nochatter::core::CommMode;
use nochatter::graph::generators::Family;
use nochatter::sim::WakeSchedule;
use nochatter_lab::{run_campaign, Matrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let campaign = Matrix {
        families: vec![Family::Ring, Family::Grid, Family::Star],
        sizes: vec![6, 9],
        teams: vec![vec![3, 5, 7]],
        schedules: vec![WakeSchedule::Simultaneous],
        modes: vec![CommMode::Silent, CommMode::Talking],
        ..Matrix::new()
    }
    .campaign("silent-vs-talking", 1)?;
    let report = run_campaign(&campaign, 0);

    println!(
        "{:<8} {:>4} {:>14} {:>14} {:>8}",
        "family", "n", "silent", "talking", "ratio"
    );
    for (silent, talking) in report.mode_pairs("silent", "talking") {
        assert!(silent.ok && talking.ok, "every cell must gather");
        println!(
            "{:<8} {:>4} {:>14} {:>14} {:>7.2}x",
            silent.key.family,
            silent.n_actual,
            silent.rounds,
            talking.rounds,
            silent.rounds as f64 / talking.rounds as f64
        );
    }
    println!();
    println!(
        "{} scenarios on {} worker(s) in {:?}",
        report.records.len(),
        report.workers,
        report.wall
    );
    println!("silence costs a constant factor per instance here — exactly the");
    println!("5i·T Communicate term the paper folds into its polynomial bound");
    println!("(Theorem 3.1); tests/differential.rs pins the envelope.");
    Ok(())
}
