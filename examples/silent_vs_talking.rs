//! The price of silence: the paper's weak model vs. the traditional one.
//!
//! Runs the same gathering instance twice — once in the weak model (agents
//! sense only `CurCard` and communicate by movement) and once in the
//! traditional model (co-located agents exchange labels instantly) — and
//! reports how many rounds the silence costs. The only difference between
//! the two runs is whether the `Communicate` step of each phase is
//! movement-encoded (`5i·T(EXPLO(N))` rounds) or free.
//!
//! Run with: `cargo run --release --example silent_vs_talking`

use nochatter::core::{harness, CommMode, KnownSetup};
use nochatter::graph::{generators, InitialConfiguration, Label, NodeId};
use nochatter::sim::WakeSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let label = |v: u64| Label::new(v).ok_or("labels are positive");
    println!(
        "{:<8} {:>6} {:>14} {:>14} {:>8}",
        "graph", "agents", "silent", "talking", "ratio"
    );

    for (name, graph, starts) in [
        ("ring6", generators::ring(6), vec![0u32, 2, 4]),
        ("grid3x3", generators::grid(3, 3), vec![0, 4, 8]),
        ("star7", generators::star(7), vec![1, 3, 5]),
    ] {
        let agents: Vec<(Label, NodeId)> = starts
            .iter()
            .enumerate()
            .map(|(i, &v)| Ok::<_, &str>((label(3 + 2 * i as u64)?, NodeId::new(v))))
            .collect::<Result<_, _>>()?;
        let cfg = InitialConfiguration::new(graph, agents)?;
        let setup = KnownSetup::for_configuration(&cfg, 10, 1);

        let mut rounds = Vec::new();
        for mode in [CommMode::Silent, CommMode::Talking] {
            let outcome = harness::run_known(&cfg, &setup, mode, WakeSchedule::Simultaneous)?;
            let report = outcome.gathering()?;
            rounds.push(report.round);
        }
        println!(
            "{:<8} {:>6} {:>14} {:>14} {:>7.2}x",
            name,
            starts.len(),
            rounds[0],
            rounds[1],
            rounds[0] as f64 / rounds[1] as f64
        );
    }
    println!();
    println!("silence costs a constant factor — exactly the 5i·T Communicate");
    println!("term the paper folds into its polynomial bound (Theorem 3.1).");
    Ok(())
}
