//! Gathering with *zero* prior knowledge: no size bound, no map, nothing.
//!
//! Two software agents land in a network they know absolutely nothing
//! about. They share only the algorithm and a fixed enumeration of
//! candidate initial configurations (paper §4). They test hypotheses one
//! by one — the first two are wrong in different ways — until the true
//! configuration passes every movement-encoded consistency check, at which
//! point both agents declare, elect the smaller label, and know the exact
//! network size.
//!
//! Run with: `cargo run --release --example unknown_network`

use nochatter::core::unknown::{run_unknown, EstMode, SliceEnumeration};
use nochatter::graph::{generators, InitialConfiguration, Label, NodeId};
use nochatter::sim::WakeSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let label = |v: u64| Label::new(v).ok_or("labels are positive");

    // The real world: a 3-ring with agents 2 and 5 at distance 1.
    let truth = InitialConfiguration::new(
        generators::ring(3),
        vec![(label(2)?, NodeId::new(0)), (label(5)?, NodeId::new(1))],
    )?;

    // The shared enumeration Ω. φ1 has the right size but the wrong labels;
    // φ2 is the truth. (Every additional wrong hypothesis grows the ball
    // radii and the doubly-nested waiting periods — the algorithm is
    // exponential in the enumeration index, exactly as the paper states.)
    let phi1 = InitialConfiguration::new(
        generators::ring(3),
        vec![(label(1)?, NodeId::new(0)), (label(3)?, NodeId::new(1))],
    )?;
    let omega = SliceEnumeration::new(vec![phi1, truth.clone()]);

    println!("testing hypotheses (this algorithm is exponential by design)...");
    let (outcome, reports) = run_unknown(
        &truth,
        omega,
        EstMode::Conservative,
        WakeSchedule::Staggered { gap: 5 },
    )?;

    let report = outcome.gathering()?;
    println!(
        "gathered in round {} at {} — {} engine iterations, {} rounds fast-forwarded",
        report.round, report.node, outcome.engine_iterations, outcome.skipped_rounds
    );
    for (agent, r) in reports {
        let r = r.expect("all agents reported");
        println!(
            "agent {agent}: accepted hypothesis {} — leader {}, learned network size {}",
            r.hypothesis, r.leader, r.size
        );
        assert_eq!(r.hypothesis, 2, "only the true configuration passes");
        assert_eq!(r.size, 3, "Theorem 4.1: the exact size is learned");
    }
    Ok(())
}
